//! The site-local storage engine.
//!
//! A [`Store`] holds the copies (primary or secondary) that live at one
//! site, executes local (sub)transactions under strict 2PL, and exposes the
//! hooks the protocol engines need:
//!
//! * lock waits surface as [`StorageError::WouldBlock`] — the engine
//!   suspends the transaction and retries the operation after the lock
//!   manager reports a grant;
//! * every installed value carries its *logical writer* (a
//!   [`GlobalTxnId`]), so applying a secondary subtransaction at a replica
//!   tags the copy with the originating transaction and the
//!   serializability checker can recover reads-from edges;
//! * commit returns the transaction's read and write sets (the write set
//!   is what gets packaged into secondary subtransactions).

use std::collections::HashMap;

use repl_types::trace::{self, TraceEvent};
use repl_types::{GlobalTxnId, ItemId, StorageError, TxnId, Value};

use crate::hash_index::HashIndex;
use crate::lock::{LockManager, LockMode, LockOutcome};
use crate::mvcc::VersionChains;
use crate::snapshot::{SnapshotId, SnapshotManager};
use crate::undo::{UndoEntry, UndoLog};

/// One item copy stored at a site.
#[derive(Clone, Debug)]
struct Cell {
    value: Value,
    /// Logical transaction that wrote the current value (`None` = initial).
    writer: Option<GlobalTxnId>,
    /// Monotone per-copy version counter.
    version: u64,
}

/// Result of a transactional read.
#[derive(Clone, Debug, PartialEq)]
pub struct ReadResult {
    /// The value read.
    pub value: Value,
    /// Logical writer of that value (`None` for the initial value).
    pub writer: Option<GlobalTxnId>,
}

/// Lifecycle state of a local (sub)transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnStatus {
    /// Executing; may read, write, commit or abort.
    Active,
    /// Finished execution but holding locks, awaiting a distributed-commit
    /// decision (BackEdge eager phase / 2PC participants).
    Prepared,
}

#[derive(Debug)]
struct TxnState {
    status: TxnStatus,
    undo: UndoLog,
    /// `(item, writer-of-version-read)` pairs, in read order.
    reads: Vec<(ItemId, Option<GlobalTxnId>)>,
    /// `(item, value)` pairs in write order (may repeat items).
    writes: Vec<(ItemId, Value)>,
    /// Logical writer of this transaction's writes (set on the first
    /// write), stamped onto the versions installed at commit.
    writer: Option<GlobalTxnId>,
}

/// Read/write sets returned by [`Store::commit`].
#[derive(Clone, Debug, Default)]
pub struct CommitInfo {
    /// `(item, writer-of-version-read)` pairs, in read order.
    pub reads: Vec<(ItemId, Option<GlobalTxnId>)>,
    /// `(item, value)` pairs in write order (may repeat items).
    pub writes: Vec<(ItemId, Value)>,
}

impl CommitInfo {
    /// The deduplicated write set: last value per item, in first-write
    /// order. This is what a secondary subtransaction carries.
    pub fn write_set(&self) -> Vec<(ItemId, Value)> {
        let mut order: Vec<ItemId> = Vec::new();
        let mut last: HashMap<ItemId, Value> = HashMap::new();
        for (item, value) in &self.writes {
            if !last.contains_key(item) {
                order.push(*item);
            }
            last.insert(*item, value.clone());
        }
        order
            .into_iter()
            .map(|i| {
                let v = last.remove(&i).expect("recorded above");
                (i, v)
            })
            .collect()
    }
}

/// The per-site main-memory store.
#[derive(Debug, Default)]
pub struct Store {
    cells: HashIndex<Cell>,
    locks: LockManager,
    txns: HashMap<TxnId, TxnState>,
    next_txn: u64,
    /// Per-item committed version chains (MVCC snapshot reads).
    mvcc: VersionChains,
    /// Active read-only snapshots and the GC low-water mark.
    snapshots: SnapshotManager,
    /// Monotone commit timestamp, bumped by every writing commit.
    commit_ts: u64,
}

impl Store {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a copy of `item` with its initial value. Non-transactional;
    /// used during database population.
    pub fn create_item(&mut self, item: ItemId, value: Value) {
        self.mvcc.seed(item, value.clone(), None);
        self.cells.insert(item, Cell { value, writer: None, version: 0 });
    }

    /// True if this site stores a copy (primary or secondary) of `item`.
    pub fn has_item(&self, item: ItemId) -> bool {
        self.cells.contains(item)
    }

    /// Number of item copies stored.
    pub fn item_count(&self) -> usize {
        self.cells.len()
    }

    /// Non-transactional inspection of a copy's current value and writer
    /// (used by convergence tests and examples).
    ///
    /// Takes **no lock**; in a happens-before trace the access is recorded
    /// with the [`trace::NO_TXN`] sentinel so the race detector can flag a
    /// peek that races a concurrent writer.
    pub fn peek(&self, item: ItemId) -> Option<ReadResult> {
        let result =
            self.cells.get(item).map(|c| ReadResult { value: c.value.clone(), writer: c.writer });
        if result.is_some() && trace::is_enabled() {
            trace::record(TraceEvent::Access {
                scope: self.locks.trace_scope(),
                item,
                txn: trace::NO_TXN,
                write: false,
            });
        }
        result
    }

    /// Begin a new local (sub)transaction.
    pub fn begin(&mut self) -> TxnId {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        self.txns.insert(
            id,
            TxnState {
                status: TxnStatus::Active,
                undo: UndoLog::new(),
                reads: Vec::new(),
                writes: Vec::new(),
                writer: None,
            },
        );
        id
    }

    /// True if `txn` is currently known (active or prepared).
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.txns.contains_key(&txn)
    }

    /// Access the lock manager (deadlock detection, arrival ordinals).
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Mutable access to the lock manager.
    pub fn locks_mut(&mut self) -> &mut LockManager {
        &mut self.locks
    }

    fn check_active(&self, txn: TxnId) -> Result<(), StorageError> {
        match self.txns.get(&txn) {
            Some(s) if s.status == TxnStatus::Active => Ok(()),
            Some(_) => Err(StorageError::InvalidState(txn)),
            None => Err(StorageError::NoSuchTxn(txn)),
        }
    }

    /// Transactional read under an S lock.
    ///
    /// Returns [`StorageError::WouldBlock`] if the lock is unavailable; the
    /// request stays queued and the caller must retry after the grant.
    pub fn read(&mut self, txn: TxnId, item: ItemId) -> Result<ReadResult, StorageError> {
        self.check_active(txn)?;
        if !self.cells.contains(item) {
            return Err(StorageError::NoSuchItem(item));
        }
        match self.locks.request(txn, item, LockMode::Shared) {
            LockOutcome::Queued => Err(StorageError::WouldBlock(item)),
            LockOutcome::Granted => {
                let cell = self.cells.get(item).expect("checked above");
                let result = ReadResult { value: cell.value.clone(), writer: cell.writer };
                self.txns.get_mut(&txn).expect("checked active").reads.push((item, result.writer));
                if trace::is_enabled() {
                    trace::record(TraceEvent::Access {
                        scope: self.locks.trace_scope(),
                        item,
                        txn,
                        write: false,
                    });
                }
                Ok(result)
            }
        }
    }

    /// Transactional write under an X lock, installing `value` attributed
    /// to logical writer `writer`.
    pub fn write(
        &mut self,
        txn: TxnId,
        item: ItemId,
        value: Value,
        writer: GlobalTxnId,
    ) -> Result<(), StorageError> {
        self.check_active(txn)?;
        if !self.cells.contains(item) {
            return Err(StorageError::NoSuchItem(item));
        }
        match self.locks.request(txn, item, LockMode::Exclusive) {
            LockOutcome::Queued => Err(StorageError::WouldBlock(item)),
            LockOutcome::Granted => {
                let cell = self.cells.get_mut(item).expect("checked above");
                let entry = UndoEntry {
                    item,
                    old_value: std::mem::replace(&mut cell.value, value.clone()),
                    old_writer: cell.writer.replace(writer),
                    old_version: cell.version,
                };
                cell.version += 1;
                let state = self.txns.get_mut(&txn).expect("checked active");
                state.undo.push(entry);
                state.writes.push((item, value));
                state.writer = Some(writer);
                if trace::is_enabled() {
                    trace::record(TraceEvent::Access {
                        scope: self.locks.trace_scope(),
                        item,
                        txn,
                        write: true,
                    });
                }
                Ok(())
            }
        }
    }

    /// Move `txn` to the `Prepared` state: execution is complete and its
    /// locks are pinned until a distributed commit decision arrives
    /// (BackEdge protocol, §4.1: backedge subtransactions "do not commit
    /// and hold on to their locks").
    pub fn prepare(&mut self, txn: TxnId) -> Result<(), StorageError> {
        self.check_active(txn)?;
        self.txns.get_mut(&txn).expect("checked").status = TxnStatus::Prepared;
        Ok(())
    }

    /// Commit `txn`: release all locks (strict 2PL) and return its
    /// read/write sets plus the transactions unblocked by the release.
    ///
    /// A writing commit additionally installs one new version per
    /// written item, stamped with a fresh site-local commit timestamp —
    /// the versions snapshot reads resolve against. While no snapshot is
    /// open the chains are trimmed back to their newest version, so
    /// pure-2PL workloads pay O(1) space per item.
    pub fn commit(&mut self, txn: TxnId) -> Result<(CommitInfo, Vec<TxnId>), StorageError> {
        let state = self.txns.remove(&txn).ok_or(StorageError::NoSuchTxn(txn))?;
        let granted = self.locks.release_all(txn);
        let info = CommitInfo { reads: state.reads, writes: state.writes };
        if !info.writes.is_empty() {
            self.commit_ts += 1;
            let ts = self.commit_ts;
            let trim = self.snapshots.active_count() == 0;
            for (item, value) in info.write_set() {
                self.mvcc.install(item, ts, value, state.writer);
                if trim {
                    self.mvcc.trim_to_latest(item);
                }
            }
        }
        Ok((info, granted))
    }

    /// Abort `txn`: roll back its writes from the undo log, release all
    /// locks, and return the transactions unblocked by the release.
    ///
    /// Safe to call on a blocked transaction (its queued lock request is
    /// cancelled) and on a prepared one (BackEdge global-deadlock aborts).
    pub fn abort(&mut self, txn: TxnId) -> Result<Vec<TxnId>, StorageError> {
        let mut state = self.txns.remove(&txn).ok_or(StorageError::NoSuchTxn(txn))?;
        for entry in state.undo.drain_rollback() {
            let cell =
                self.cells.get_mut(entry.item).expect("undo entries reference existing items");
            cell.value = entry.old_value;
            cell.writer = entry.old_writer;
            cell.version = entry.old_version;
            // Rollback rewrites the slot under the still-held X lock.
            if trace::is_enabled() {
                trace::record(TraceEvent::Access {
                    scope: self.locks.trace_scope(),
                    item: entry.item,
                    txn,
                    write: true,
                });
            }
        }
        Ok(self.locks.release_all(txn))
    }

    /// The store's current commit timestamp (what a snapshot opened now
    /// would read at).
    pub fn current_commit_ts(&self) -> u64 {
        self.commit_ts
    }

    /// Open a read-only snapshot at the current commit timestamp.
    ///
    /// Every subsequent [`Store::read_snapshot`] through the returned
    /// handle observes exactly the committed prefix up to this point —
    /// later commits are invisible, aborted writes never were. The
    /// handle must be closed with [`Store::end_snapshot`] so version
    /// garbage collection can advance.
    pub fn begin_snapshot(&mut self) -> SnapshotId {
        self.snapshots.begin(self.commit_ts)
    }

    /// Close `snap` and garbage-collect versions below the new low-water
    /// mark (the oldest still-open snapshot, or the current commit
    /// timestamp when none remains). Closing twice is harmless.
    pub fn end_snapshot(&mut self, snap: SnapshotId) {
        if self.snapshots.end(snap).is_some() {
            let low_water = self.snapshots.low_water(self.commit_ts);
            self.mvcc.gc_below(low_water);
        }
    }

    /// Number of snapshots currently open.
    pub fn active_snapshots(&self) -> usize {
        self.snapshots.active_count()
    }

    /// Total versions retained across all chains (observability for GC
    /// tests and benches).
    pub fn version_count(&self) -> usize {
        self.mvcc.total_versions()
    }

    /// Lock-free snapshot read: the version of `item` visible at
    /// `snap`'s timestamp.
    ///
    /// This path never touches the lock manager (pinned by replint
    /// RL011 and the lock-trace test): it cannot block, cannot deadlock,
    /// and cannot be aborted. Reads-from edges for the serializability
    /// checker come from the returned `writer`.
    pub fn read_snapshot(
        &self,
        snap: SnapshotId,
        item: ItemId,
    ) -> Result<ReadResult, StorageError> {
        let ts = self.snapshots.ts_of(snap).ok_or(StorageError::NoSuchSnapshot(snap.0))?;
        let version = self.mvcc.visible_at(item, ts).ok_or(StorageError::NoSuchItem(item))?;
        if trace::is_enabled() {
            trace::record(TraceEvent::Access {
                scope: self.trace_scope(),
                item,
                txn: trace::NO_TXN,
                write: false,
            });
        }
        Ok(ReadResult { value: version.value.clone(), writer: version.writer })
    }

    /// The store's trace scope identity (shared with its lock scope so
    /// snapshot reads and locked accesses land in one scope).
    fn trace_scope(&self) -> u64 {
        self.locks.trace_scope()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_types::SiteId;

    fn gid(n: u64) -> GlobalTxnId {
        GlobalTxnId::new(SiteId(0), n)
    }

    fn store_with_items(n: u32) -> Store {
        let mut s = Store::new();
        for i in 0..n {
            s.create_item(ItemId(i), Value::Initial);
        }
        s
    }

    #[test]
    fn read_your_own_write() {
        let mut s = store_with_items(2);
        let t = s.begin();
        s.write(t, ItemId(0), Value::int(5), gid(1)).unwrap();
        let r = s.read(t, ItemId(0)).unwrap();
        assert_eq!(r.value, Value::int(5));
        assert_eq!(r.writer, Some(gid(1)));
    }

    #[test]
    fn commit_returns_sets_and_releases() {
        let mut s = store_with_items(3);
        let t1 = s.begin();
        s.read(t1, ItemId(0)).unwrap();
        s.write(t1, ItemId(1), Value::int(1), gid(1)).unwrap();
        s.write(t1, ItemId(1), Value::int(2), gid(1)).unwrap();

        let t2 = s.begin();
        assert!(matches!(s.read(t2, ItemId(1)), Err(StorageError::WouldBlock(_))));

        let (info, granted) = s.commit(t1).unwrap();
        assert_eq!(info.reads, vec![(ItemId(0), None)]);
        assert_eq!(info.write_set(), vec![(ItemId(1), Value::int(2))]);
        assert_eq!(granted, vec![t2]);

        // t2's queued read was granted; a retry must now succeed.
        let r = s.read(t2, ItemId(1)).unwrap();
        assert_eq!(r.value, Value::int(2));
        assert_eq!(r.writer, Some(gid(1)));
    }

    #[test]
    fn abort_rolls_back_all_writes() {
        let mut s = store_with_items(2);
        s.create_item(ItemId(0), Value::int(100));
        let t = s.begin();
        s.write(t, ItemId(0), Value::int(1), gid(1)).unwrap();
        s.write(t, ItemId(0), Value::int(2), gid(1)).unwrap();
        s.write(t, ItemId(1), Value::int(3), gid(1)).unwrap();
        s.abort(t).unwrap();
        assert_eq!(s.peek(ItemId(0)).unwrap().value, Value::int(100));
        assert_eq!(s.peek(ItemId(0)).unwrap().writer, None);
        assert_eq!(s.peek(ItemId(1)).unwrap().value, Value::Initial);
    }

    #[test]
    fn abort_while_blocked_cancels_wait() {
        let mut s = store_with_items(1);
        let t1 = s.begin();
        s.write(t1, ItemId(0), Value::int(1), gid(1)).unwrap();
        let t2 = s.begin();
        assert!(matches!(
            s.write(t2, ItemId(0), Value::int(2), gid(2)),
            Err(StorageError::WouldBlock(_))
        ));
        s.abort(t2).unwrap();
        assert_eq!(s.locks().blocked_count(), 0);
        let (_, granted) = s.commit(t1).unwrap();
        assert!(granted.is_empty());
        assert_eq!(s.peek(ItemId(0)).unwrap().value, Value::int(1));
    }

    #[test]
    fn missing_item_is_an_error() {
        let mut s = store_with_items(1);
        let t = s.begin();
        assert_eq!(s.read(t, ItemId(9)), Err(StorageError::NoSuchItem(ItemId(9))));
        assert_eq!(
            s.write(t, ItemId(9), Value::int(1), gid(1)),
            Err(StorageError::NoSuchItem(ItemId(9)))
        );
    }

    #[test]
    fn prepared_txn_rejects_operations_but_can_abort() {
        let mut s = store_with_items(1);
        let t = s.begin();
        s.write(t, ItemId(0), Value::int(1), gid(1)).unwrap();
        s.prepare(t).unwrap();
        assert_eq!(s.read(t, ItemId(0)), Err(StorageError::InvalidState(t)));
        // Prepared transactions still hold locks...
        let t2 = s.begin();
        assert!(matches!(s.read(t2, ItemId(0)), Err(StorageError::WouldBlock(_))));
        // ...and can be aborted by a global deadlock decision.
        s.abort(t).unwrap();
        assert_eq!(s.peek(ItemId(0)).unwrap().value, Value::Initial);
        let r = s.read(t2, ItemId(0)).unwrap();
        assert_eq!(r.value, Value::Initial);
    }

    #[test]
    fn unknown_txn_errors() {
        let mut s = store_with_items(1);
        assert_eq!(s.commit(TxnId(99)).err(), Some(StorageError::NoSuchTxn(TxnId(99))));
        assert_eq!(s.abort(TxnId(99)).err(), Some(StorageError::NoSuchTxn(TxnId(99))));
    }

    #[test]
    fn versions_advance_and_roll_back() {
        let mut s = store_with_items(1);
        let t = s.begin();
        s.write(t, ItemId(0), Value::int(1), gid(1)).unwrap();
        s.commit(t).unwrap();
        let t = s.begin();
        s.write(t, ItemId(0), Value::int(2), gid(2)).unwrap();
        s.abort(t).unwrap();
        let r = s.peek(ItemId(0)).unwrap();
        assert_eq!(r.value, Value::int(1));
        assert_eq!(r.writer, Some(gid(1)));
    }

    #[test]
    fn snapshot_pins_its_begin_prefix() {
        let mut s = store_with_items(2);
        let t = s.begin();
        s.write(t, ItemId(0), Value::int(1), gid(1)).unwrap();
        s.commit(t).unwrap();

        let snap = s.begin_snapshot();
        // Commits after the snapshot began are invisible to it.
        let t = s.begin();
        s.write(t, ItemId(0), Value::int(2), gid(2)).unwrap();
        s.write(t, ItemId(1), Value::int(3), gid(2)).unwrap();
        s.commit(t).unwrap();

        let r = s.read_snapshot(snap, ItemId(0)).unwrap();
        assert_eq!((r.value, r.writer), (Value::int(1), Some(gid(1))));
        let r = s.read_snapshot(snap, ItemId(1)).unwrap();
        assert_eq!((r.value, r.writer), (Value::Initial, None));
        // The live state moved on.
        assert_eq!(s.peek(ItemId(0)).unwrap().value, Value::int(2));
        s.end_snapshot(snap);
        // A closed snapshot is refused, not misread.
        assert_eq!(s.read_snapshot(snap, ItemId(0)), Err(StorageError::NoSuchSnapshot(snap.0)));
    }

    #[test]
    fn snapshot_ignores_uncommitted_and_aborted_writes() {
        let mut s = store_with_items(1);
        // An active writer holds the X lock...
        let writer = s.begin();
        s.write(writer, ItemId(0), Value::int(99), gid(9)).unwrap();
        // ...but the snapshot read neither blocks nor sees the dirty value.
        let snap = s.begin_snapshot();
        let r = s.read_snapshot(snap, ItemId(0)).unwrap();
        assert_eq!(r.value, Value::Initial);
        s.abort(writer).unwrap();
        // Aborted versions never reach a chain.
        let r = s.read_snapshot(snap, ItemId(0)).unwrap();
        assert_eq!(r.value, Value::Initial);
        s.end_snapshot(snap);
        let snap = s.begin_snapshot();
        assert_eq!(s.read_snapshot(snap, ItemId(0)).unwrap().value, Value::Initial);
        s.end_snapshot(snap);
    }

    #[test]
    fn snapshot_gc_reclaims_below_low_water() {
        let mut s = store_with_items(1);
        let snap = s.begin_snapshot();
        for i in 1..=5u64 {
            let t = s.begin();
            s.write(t, ItemId(0), Value::int(i as i64), gid(i)).unwrap();
            s.commit(t).unwrap();
        }
        // The open snapshot pins the whole chain (initial + 5 versions).
        assert_eq!(s.version_count(), 6);
        assert_eq!(s.read_snapshot(snap, ItemId(0)).unwrap().value, Value::Initial);
        s.end_snapshot(snap);
        // Low water advanced to the current commit ts: one version left.
        assert_eq!(s.version_count(), 1);
        assert_eq!(s.active_snapshots(), 0);
        // And with no snapshot open, commits trim as they go.
        let t = s.begin();
        s.write(t, ItemId(0), Value::int(42), gid(7)).unwrap();
        s.commit(t).unwrap();
        assert_eq!(s.version_count(), 1);
    }

    #[test]
    fn snapshot_reads_take_zero_locks() {
        let mut s = store_with_items(1);
        let t = s.begin();
        s.write(t, ItemId(0), Value::int(7), gid(1)).unwrap();
        s.commit(t).unwrap();
        let scope = s.locks().trace_scope();
        let in_scope = |ev: &TraceEvent| match *ev {
            TraceEvent::LockAcquire { scope: sc, .. }
            | TraceEvent::LockRelease { scope: sc, .. } => sc == scope,
            _ => false,
        };

        // Control: a 2PL read of the same item does acquire a lock.
        trace::enable();
        let t = s.begin();
        s.read(t, ItemId(0)).unwrap();
        s.commit(t).unwrap();
        trace::disable();
        let control = trace::take();
        assert!(
            control.iter().any(|e| in_scope(&e.event)),
            "2PL control read recorded no lock event"
        );

        // The MVCC path: same read, zero lock events in this scope.
        trace::enable();
        let snap = s.begin_snapshot();
        let r = s.read_snapshot(snap, ItemId(0)).unwrap();
        s.end_snapshot(snap);
        trace::disable();
        let events = trace::take();
        assert_eq!(r.value, Value::int(7));
        assert!(
            events.iter().all(|e| !in_scope(&e.event)),
            "snapshot read touched the lock manager: {events:?}"
        );
        // The access itself is still visible to the race detector.
        assert!(events.iter().any(|e| matches!(
            e.event,
            TraceEvent::Access { scope: sc, txn, write: false, .. }
                if sc == scope && txn == trace::NO_TXN
        )));
    }

    mod snapshot_props {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeMap;

        const ITEMS: u32 = 6;

        type ModelState = BTreeMap<u32, (Value, Option<GlobalTxnId>)>;

        fn initial_model() -> ModelState {
            (0..ITEMS).map(|i| (i, (Value::Initial, None))).collect()
        }

        proptest! {
            /// Snapshot reads observe exactly the committed prefix at
            /// their begin point: whole transactions or nothing (no torn
            /// reads), never an aborted write, regardless of how commits,
            /// aborts and snapshot lifetimes interleave.
            #[test]
            fn snapshots_observe_a_committed_prefix(
                script in prop::collection::vec(
                    (prop::collection::vec((0u32..ITEMS, 0i64..1000), 1..4), prop::bool::ANY),
                    1..24,
                ),
                snap_raw in prop::collection::vec(0usize..24, 0..4),
            ) {
                let snap_points: std::collections::BTreeSet<usize> =
                    snap_raw.into_iter().collect();
                let mut s = store_with_items(ITEMS);
                let mut model = initial_model();
                let mut open: Vec<(crate::snapshot::SnapshotId, ModelState)> = Vec::new();
                for (i, (writes, commits)) in script.iter().enumerate() {
                    if snap_points.contains(&i) {
                        open.push((s.begin_snapshot(), model.clone()));
                    }
                    let w = gid(i as u64 + 1);
                    let t = s.begin();
                    for (item, v) in writes {
                        s.write(t, ItemId(*item), Value::int(*v), w).unwrap();
                    }
                    if *commits {
                        s.commit(t).unwrap();
                        for (item, v) in writes {
                            model.insert(*item, (Value::int(*v), Some(w)));
                        }
                    } else {
                        s.abort(t).unwrap();
                    }
                    // Every open snapshot still reads its own prefix —
                    // all items, atomically per transaction.
                    for (snap, expected) in &open {
                        for item in 0..ITEMS {
                            let r = s.read_snapshot(*snap, ItemId(item)).unwrap();
                            let (ev, ew) = &expected[&item];
                            prop_assert_eq!(&r.value, ev, "torn/aborted read at item {}", item);
                            prop_assert_eq!(&r.writer, ew);
                        }
                    }
                }
                // The live state matches the full committed history.
                for item in 0..ITEMS {
                    let (ev, _) = &model[&item];
                    prop_assert_eq!(&s.peek(ItemId(item)).unwrap().value, ev);
                }
                for (snap, _) in open {
                    s.end_snapshot(snap);
                }
                // With every snapshot closed, GC leaves one version per item.
                prop_assert_eq!(s.version_count(), ITEMS as usize);
            }
        }
    }
}
