//! Open-addressing hash index keyed by [`ItemId`].
//!
//! The paper's prototype accessed items through a hash index on the item
//! identifier; this module provides that index from scratch rather than
//! leaning on `std::collections::HashMap`, both to keep the storage engine
//! self-contained and to control probe behaviour (linear probing with
//! backward-shift deletion — no tombstones, so long-lived sites never
//! degrade).
//!
//! Keys are hashed with a Fibonacci multiplicative hash, which is a good
//! fit for the small dense integer ids the workloads use.

use repl_types::ItemId;

const INITIAL_CAPACITY: usize = 16;
/// Grow when load factor exceeds 7/8.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

#[derive(Clone, Debug)]
struct Slot<V> {
    key: ItemId,
    value: V,
}

/// A linear-probing hash table from [`ItemId`] to `V`.
///
/// Supports the operations a storage engine needs — insert, lookup,
/// in-place mutation, removal, iteration — with O(1) expected cost.
#[derive(Clone, Debug)]
pub struct HashIndex<V> {
    slots: Vec<Option<Slot<V>>>,
    len: usize,
    /// capacity mask; slots.len() is always a power of two
    mask: usize,
}

impl<V> Default for HashIndex<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> HashIndex<V> {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::with_capacity(INITIAL_CAPACITY)
    }

    /// Create an empty index sized for at least `cap` entries without
    /// rehashing.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = (cap.max(INITIAL_CAPACITY) * LOAD_DEN / LOAD_NUM).next_power_of_two();
        HashIndex { slots: (0..cap).map(|_| None).collect(), len: 0, mask: cap - 1 }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the index holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket(&self, key: ItemId) -> usize {
        // Fibonacci hashing: multiply by 2^64 / phi, take high bits.
        let h = (key.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    /// Insert or replace; returns the previous value for `key`, if any.
    pub fn insert(&mut self, key: ItemId, value: V) -> Option<V> {
        if (self.len + 1) * LOAD_DEN > self.slots.len() * LOAD_NUM {
            self.grow();
        }
        let mut idx = self.bucket(key);
        loop {
            match &mut self.slots[idx] {
                Some(slot) if slot.key == key => {
                    return Some(std::mem::replace(&mut slot.value, value));
                }
                Some(_) => idx = (idx + 1) & self.mask,
                empty @ None => {
                    *empty = Some(Slot { key, value });
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// Look up `key`.
    pub fn get(&self, key: ItemId) -> Option<&V> {
        let mut idx = self.bucket(key);
        loop {
            match &self.slots[idx] {
                Some(slot) if slot.key == key => return Some(&slot.value),
                Some(_) => idx = (idx + 1) & self.mask,
                None => return None,
            }
        }
    }

    /// Look up `key`, allowing mutation of the stored value.
    pub fn get_mut(&mut self, key: ItemId) -> Option<&mut V> {
        let mut idx = self.bucket(key);
        loop {
            match &self.slots[idx] {
                Some(slot) if slot.key == key => break,
                Some(_) => idx = (idx + 1) & self.mask,
                None => return None,
            }
        }
        self.slots[idx].as_mut().map(|s| &mut s.value)
    }

    /// True if `key` is present.
    pub fn contains(&self, key: ItemId) -> bool {
        self.get(key).is_some()
    }

    /// Remove `key`, returning its value. Uses backward-shift deletion so
    /// probe chains stay intact without tombstones.
    pub fn remove(&mut self, key: ItemId) -> Option<V> {
        let mut idx = self.bucket(key);
        loop {
            match &self.slots[idx] {
                Some(slot) if slot.key == key => break,
                Some(_) => idx = (idx + 1) & self.mask,
                None => return None,
            }
        }
        let removed = self.slots[idx].take().map(|s| s.value);
        self.len -= 1;

        // Backward-shift: walk the cluster after idx and move back any entry
        // whose home bucket is outside the gap we just opened.
        let mut gap = idx;
        let mut cur = (idx + 1) & self.mask;
        while let Some(slot) = &self.slots[cur] {
            let home = self.bucket(slot.key);
            // Move the entry back iff the gap lies cyclically between its
            // home bucket and its current position.
            let between =
                if gap <= cur { home <= gap || home > cur } else { home <= gap && home > cur };
            if between {
                self.slots[gap] = self.slots[cur].take();
                gap = cur;
            }
            cur = (cur + 1) & self.mask;
        }
        removed
    }

    /// Iterate over `(key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &V)> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|slot| (slot.key, &slot.value)))
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| None).collect());
        self.mask = new_cap - 1;
        self.len = 0;
        for slot in old.into_iter().flatten() {
            self.insert(slot.key, slot.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_roundtrip() {
        let mut idx = HashIndex::new();
        assert!(idx.is_empty());
        for i in 0..100u32 {
            assert_eq!(idx.insert(ItemId(i), i * 10), None);
        }
        assert_eq!(idx.len(), 100);
        for i in 0..100u32 {
            assert_eq!(idx.get(ItemId(i)), Some(&(i * 10)));
        }
        assert_eq!(idx.get(ItemId(1000)), None);
    }

    #[test]
    fn insert_replaces() {
        let mut idx = HashIndex::new();
        idx.insert(ItemId(1), "a");
        assert_eq!(idx.insert(ItemId(1), "b"), Some("a"));
        assert_eq!(idx.get(ItemId(1)), Some(&"b"));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn get_mut_mutates() {
        let mut idx = HashIndex::new();
        idx.insert(ItemId(7), 1);
        *idx.get_mut(ItemId(7)).unwrap() += 10;
        assert_eq!(idx.get(ItemId(7)), Some(&11));
        assert!(idx.get_mut(ItemId(8)).is_none());
    }

    #[test]
    fn remove_preserves_probe_chains() {
        // Force collisions by filling a small region densely.
        let mut idx = HashIndex::with_capacity(16);
        for i in 0..200u32 {
            idx.insert(ItemId(i), i);
        }
        // Remove every third key and verify the rest stay reachable.
        for i in (0..200u32).step_by(3) {
            assert_eq!(idx.remove(ItemId(i)), Some(i));
        }
        for i in 0..200u32 {
            if i % 3 == 0 {
                assert_eq!(idx.get(ItemId(i)), None);
            } else {
                assert_eq!(idx.get(ItemId(i)), Some(&i));
            }
        }
    }

    #[test]
    fn remove_missing_is_none() {
        let mut idx: HashIndex<u32> = HashIndex::new();
        assert_eq!(idx.remove(ItemId(5)), None);
        idx.insert(ItemId(5), 1);
        assert_eq!(idx.remove(ItemId(6)), None);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn iteration_sees_all_entries() {
        let mut idx = HashIndex::new();
        for i in 0..50u32 {
            idx.insert(ItemId(i), i as u64);
        }
        let mut seen: Vec<_> = idx.iter().map(|(k, _)| k.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    proptest! {
        /// The index must behave exactly like a HashMap under a random
        /// sequence of inserts and removes.
        #[test]
        fn model_equivalence(ops in prop::collection::vec(
            (0u32..64, prop::bool::ANY, 0u64..1000), 0..400)) {
            let mut idx = HashIndex::new();
            let mut model: HashMap<u32, u64> = HashMap::new();
            for (key, is_insert, val) in ops {
                if is_insert {
                    prop_assert_eq!(idx.insert(ItemId(key), val),
                                    model.insert(key, val));
                } else {
                    prop_assert_eq!(idx.remove(ItemId(key)), model.remove(&key));
                }
                prop_assert_eq!(idx.len(), model.len());
            }
            for (k, v) in &model {
                prop_assert_eq!(idx.get(ItemId(*k)), Some(v));
            }
        }
    }
}
