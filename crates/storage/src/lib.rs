//! Per-site main-memory storage engine.
//!
//! This crate is the workspace's stand-in for **DataBlitz**, the Bell Labs
//! main-memory storage manager on which the paper's prototype was built
//! (Bohannon et al., "The architecture of the Dalí main memory storage
//! manager"). It provides exactly what the §1.1 system model requires of a
//! site-local database:
//!
//! * a main-memory store of item copies, accessed through a custom
//!   open-addressing [`hash_index::HashIndex`] (the paper: "fast access to
//!   an item is facilitated by a hash index on the item identifier");
//! * a strict two-phase-locking [`lock::LockManager`] with shared and
//!   exclusive modes, lock upgrades, FIFO wait queues and waits-for-graph
//!   deadlock detection (the prototype used 50 ms lock timeouts instead;
//!   both mechanisms are supported — timeouts are driven by the caller's
//!   clock, cycle detection by [`lock::LockManager::find_deadlock`]);
//! * per-transaction undo logs so aborted transactions roll back cleanly;
//! * version metadata on every copy (the logical writer of the current
//!   value) so the serializability checker in `repl-core` can reconstruct
//!   reads-from relationships.
//!
//! The engine is deliberately single-threaded: in the simulation each site
//! is an event-driven actor, so internal synchronization would only add
//! noise. Lock waits are surfaced as [`StorageError::WouldBlock`]; when a
//! commit or abort releases locks the engine reports which transactions
//! became runnable so the caller can resume them.

#![warn(missing_docs)]

pub mod codec;
pub mod commit_pipeline;
pub mod hash_index;
pub mod lock;
pub mod mvcc;
pub mod snapshot;
pub mod store;
pub mod undo;
pub mod wal;

pub use commit_pipeline::{CommitBatch, CommitPipeline, PipelineStats};
pub use lock::{LockManager, LockMode, LockOutcome};
pub use mvcc::{Version, VersionChain, VersionChains};
pub use snapshot::{SnapshotId, SnapshotManager};
pub use store::{CommitInfo, ReadResult, Store, TxnStatus};
pub use wal::{checkpoint, recover, Checkpoint, LogRecord, WriteAheadLog};

pub use repl_types::{GlobalTxnId, ItemId, StorageError, TxnId, Value};
