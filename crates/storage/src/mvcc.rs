//! Per-item version chains for multi-version snapshot reads.
//!
//! Strict 2PL serializes read-only transactions against the propagation
//! write stream: every S lock a read takes is an X-lock conflict waiting
//! to happen. The classic escape (C5, Parallel Deferred Update
//! Replication) is multi-versioning — writers install *new* versions
//! stamped with a monotone commit timestamp, and read-only transactions
//! read the newest version at or below a snapshot timestamp fixed when
//! they begin. No locks, no blocking, no aborts on the read path.
//!
//! This module owns the version storage: one [`VersionChain`] per item,
//! ordered by commit timestamp. The policy layer — which timestamp a
//! snapshot gets, when chains are garbage-collected — lives in
//! [`crate::snapshot::SnapshotManager`]; the integration (stamping
//! committed write sets, the lock-free `read_snapshot` entry point) in
//! [`crate::Store`].
//!
//! Chains are kept in a `BTreeMap` so garbage collection visits items in
//! a deterministic order (the simulator's results must be a pure
//! function of the seed; replint RL004 forbids hash-order iteration).
//!
//! The snapshot read path must never touch the lock manager; replint
//! RL011 rejects any `LockManager` mention in this file.

use std::collections::BTreeMap;

use repl_types::{GlobalTxnId, ItemId, Value};

/// One committed version of an item.
#[derive(Clone, Debug, PartialEq)]
pub struct Version {
    /// Commit timestamp of the transaction that installed this version
    /// (0 for the initial, pre-transactional value).
    pub commit_ts: u64,
    /// The value installed.
    pub value: Value,
    /// Logical writer (`None` for the initial value).
    pub writer: Option<GlobalTxnId>,
}

/// The versions of one item, ascending by commit timestamp.
///
/// Timestamps are strictly increasing along a chain: each commit gets a
/// fresh site-local timestamp and installs at most one version per item
/// (the deduplicated write set).
#[derive(Clone, Debug, Default)]
pub struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    /// The newest version with `commit_ts <= ts`, if any version that
    /// old exists.
    pub fn visible_at(&self, ts: u64) -> Option<&Version> {
        // Binary search for the partition point: versions are ascending
        // and timestamps unique per chain.
        let idx = self.versions.partition_point(|v| v.commit_ts <= ts);
        idx.checked_sub(1).map(|i| &self.versions[i])
    }

    /// The newest version (what a fresh snapshot would read).
    pub fn latest(&self) -> Option<&Version> {
        self.versions.last()
    }

    /// Number of versions retained.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True when no version has been installed (never the case for a
    /// seeded item).
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    fn push(&mut self, v: Version) {
        debug_assert!(
            self.versions.last().map(|last| last.commit_ts < v.commit_ts).unwrap_or(true),
            "version timestamps must be strictly increasing"
        );
        self.versions.push(v);
    }

    /// Drop every version older than the newest one with
    /// `commit_ts <= low_water`: no snapshot at or above `low_water` can
    /// ever read them. Returns how many versions were dropped.
    fn gc_below(&mut self, low_water: u64) -> usize {
        let keep_from = self.versions.partition_point(|v| v.commit_ts <= low_water);
        let drop_n = keep_from.saturating_sub(1);
        if drop_n > 0 {
            self.versions.drain(..drop_n);
        }
        drop_n
    }
}

/// All version chains of one site's store.
#[derive(Clone, Debug, Default)]
pub struct VersionChains {
    chains: BTreeMap<ItemId, VersionChain>,
}

impl VersionChains {
    /// Empty chain set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seed `item` with its initial version at timestamp 0 (paired with
    /// `Store::create_item` during database population).
    pub fn seed(&mut self, item: ItemId, value: Value, writer: Option<GlobalTxnId>) {
        let chain = self.chains.entry(item).or_default();
        chain.versions.clear();
        chain.push(Version { commit_ts: 0, value, writer });
    }

    /// Install a committed version of `item` at `commit_ts`.
    pub fn install(
        &mut self,
        item: ItemId,
        commit_ts: u64,
        value: Value,
        writer: Option<GlobalTxnId>,
    ) {
        self.chains.entry(item).or_default().push(Version { commit_ts, value, writer });
    }

    /// The version of `item` visible at snapshot timestamp `ts`.
    pub fn visible_at(&self, item: ItemId, ts: u64) -> Option<&Version> {
        self.chains.get(&item).and_then(|c| c.visible_at(ts))
    }

    /// The chain of `item`, if the item is known.
    pub fn chain(&self, item: ItemId) -> Option<&VersionChain> {
        self.chains.get(&item)
    }

    /// Garbage-collect every chain against `low_water` (the smallest
    /// timestamp any active snapshot might read at). Returns the total
    /// number of versions reclaimed.
    pub fn gc_below(&mut self, low_water: u64) -> usize {
        self.chains.values_mut().map(|c| c.gc_below(low_water)).sum()
    }

    /// Trim one item's chain to its newest version only — the fast path
    /// taken at commit time while no snapshot is active, so chains stay
    /// O(1) for workloads that never use MVCC reads.
    pub fn trim_to_latest(&mut self, item: ItemId) {
        if let Some(chain) = self.chains.get_mut(&item) {
            if chain.versions.len() > 1 {
                let last = chain.versions.len() - 1;
                chain.versions.drain(..last);
            }
        }
    }

    /// Total number of versions retained across all chains.
    pub fn total_versions(&self) -> usize {
        self.chains.values().map(|c| c.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_types::SiteId;

    fn gid(n: u64) -> GlobalTxnId {
        GlobalTxnId::new(SiteId(0), n)
    }

    fn chains_with_history() -> VersionChains {
        let mut c = VersionChains::new();
        c.seed(ItemId(0), Value::Initial, None);
        c.install(ItemId(0), 3, Value::int(30), Some(gid(3)));
        c.install(ItemId(0), 7, Value::int(70), Some(gid(7)));
        c.install(ItemId(0), 9, Value::int(90), Some(gid(9)));
        c
    }

    #[test]
    fn visibility_picks_newest_at_or_below() {
        let c = chains_with_history();
        assert_eq!(c.visible_at(ItemId(0), 0).unwrap().value, Value::Initial);
        assert_eq!(c.visible_at(ItemId(0), 2).unwrap().value, Value::Initial);
        assert_eq!(c.visible_at(ItemId(0), 3).unwrap().value, Value::int(30));
        assert_eq!(c.visible_at(ItemId(0), 8).unwrap().value, Value::int(70));
        assert_eq!(c.visible_at(ItemId(0), 100).unwrap().value, Value::int(90));
        assert_eq!(c.visible_at(ItemId(0), 8).unwrap().writer, Some(gid(7)));
    }

    #[test]
    fn unknown_item_has_no_version() {
        let c = chains_with_history();
        assert!(c.visible_at(ItemId(9), 100).is_none());
    }

    #[test]
    fn gc_keeps_the_low_water_version() {
        let mut c = chains_with_history();
        // A snapshot at ts 7 still needs the ts-7 version, but nothing
        // older.
        let dropped = c.gc_below(7);
        assert_eq!(dropped, 2); // ts 0 and ts 3 go
        assert_eq!(c.chain(ItemId(0)).unwrap().len(), 2);
        assert_eq!(c.visible_at(ItemId(0), 7).unwrap().value, Value::int(70));
        assert_eq!(c.visible_at(ItemId(0), 9).unwrap().value, Value::int(90));
    }

    #[test]
    fn gc_between_versions_keeps_the_covering_one() {
        let mut c = chains_with_history();
        // Low water 5: a snapshot at 5 reads the ts-3 version, so ts 3
        // must survive even though 3 < 5.
        let dropped = c.gc_below(5);
        assert_eq!(dropped, 1); // only ts 0 goes
        assert_eq!(c.visible_at(ItemId(0), 5).unwrap().value, Value::int(30));
    }

    #[test]
    fn trim_to_latest_leaves_one_version() {
        let mut c = chains_with_history();
        c.trim_to_latest(ItemId(0));
        assert_eq!(c.chain(ItemId(0)).unwrap().len(), 1);
        assert_eq!(c.visible_at(ItemId(0), u64::MAX).unwrap().value, Value::int(90));
        // Below the surviving version nothing is visible.
        assert!(c.visible_at(ItemId(0), 0).is_none());
    }

    #[test]
    fn total_versions_counts_across_chains() {
        let mut c = chains_with_history();
        c.seed(ItemId(1), Value::Initial, None);
        assert_eq!(c.total_versions(), 5);
        c.gc_below(u64::MAX);
        assert_eq!(c.total_versions(), 2);
    }
}
