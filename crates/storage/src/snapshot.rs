//! Snapshot lifecycle management for read-only transactions.
//!
//! A [`SnapshotManager`] hands each read-only transaction a *snapshot
//! timestamp* — the store's commit timestamp at begin — and tracks which
//! snapshots are still live. Every read of the transaction resolves
//! through [`crate::mvcc::VersionChains::visible_at`] at that one
//! timestamp, so the transaction observes exactly the committed prefix
//! of the site's local history up to its begin point: no torn reads
//! (all-or-nothing per commit), no aborted versions (aborts never reach
//! a chain), no blocking (never a lock).
//!
//! The manager also computes the GC *low-water mark*: the smallest
//! timestamp any active snapshot might still read at (or the current
//! commit timestamp when none is active). Versions strictly older than
//! the newest version at-or-below the low-water mark are unreachable
//! and reclaimed by [`crate::mvcc::VersionChains::gc_below`].
//!
//! The snapshot read path must never touch the lock manager; replint
//! RL011 rejects any `LockManager` mention in this file.

use std::collections::BTreeMap;

/// Handle to one active snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapshotId(pub u64);

/// Allocates snapshot timestamps and tracks the active set.
#[derive(Clone, Debug, Default)]
pub struct SnapshotManager {
    next: u64,
    /// Active snapshots, id → snapshot timestamp. A `BTreeMap` keeps
    /// min-timestamp queries deterministic and O(active).
    active: BTreeMap<u64, u64>,
}

impl SnapshotManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a snapshot reading at `commit_ts` (the store's current
    /// commit timestamp).
    pub fn begin(&mut self, commit_ts: u64) -> SnapshotId {
        let id = self.next;
        self.next += 1;
        self.active.insert(id, commit_ts);
        SnapshotId(id)
    }

    /// The timestamp `snap` reads at, if it is still open.
    pub fn ts_of(&self, snap: SnapshotId) -> Option<u64> {
        self.active.get(&snap.0).copied()
    }

    /// Close `snap`, returning its timestamp (`None` if unknown or
    /// already closed — closing twice is harmless).
    pub fn end(&mut self, snap: SnapshotId) -> Option<u64> {
        self.active.remove(&snap.0)
    }

    /// Number of snapshots currently open.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The GC low-water mark: the minimum timestamp of any open
    /// snapshot, or `current_ts` when none is open (then only the
    /// latest version of each item is reachable).
    pub fn low_water(&self, current_ts: u64) -> u64 {
        self.active.values().copied().min().unwrap_or(current_ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_pin_their_begin_timestamp() {
        let mut m = SnapshotManager::new();
        let a = m.begin(5);
        let b = m.begin(9);
        assert_eq!(m.ts_of(a), Some(5));
        assert_eq!(m.ts_of(b), Some(9));
        assert_ne!(a, b);
    }

    #[test]
    fn low_water_is_min_active_else_current() {
        let mut m = SnapshotManager::new();
        assert_eq!(m.low_water(42), 42);
        let a = m.begin(5);
        let b = m.begin(9);
        assert_eq!(m.low_water(42), 5);
        m.end(a);
        assert_eq!(m.low_water(42), 9);
        m.end(b);
        assert_eq!(m.low_water(42), 42);
    }

    #[test]
    fn double_end_is_harmless() {
        let mut m = SnapshotManager::new();
        let a = m.begin(3);
        assert_eq!(m.end(a), Some(3));
        assert_eq!(m.end(a), None);
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.ts_of(a), None);
    }
}
