//! Per-transaction undo logging.
//!
//! Strict 2PL plus in-place updates means abort must physically restore the
//! pre-images of everything the transaction wrote. The undo log records one
//! entry per write (not per item — applying entries in reverse order makes
//! repeated writes to the same item collapse correctly to the oldest
//! pre-image).

use repl_types::{GlobalTxnId, ItemId, Value};

/// The pre-image of one write.
#[derive(Clone, Debug)]
pub struct UndoEntry {
    /// Item that was overwritten.
    pub item: ItemId,
    /// Value before the write.
    pub old_value: Value,
    /// Logical writer of the overwritten version (`None` = initial value).
    pub old_writer: Option<GlobalTxnId>,
    /// Version counter before the write.
    pub old_version: u64,
}

/// Append-only undo log for a single transaction.
#[derive(Clone, Debug, Default)]
pub struct UndoLog {
    entries: Vec<UndoEntry>,
}

impl UndoLog {
    /// Create an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a pre-image.
    pub fn push(&mut self, entry: UndoEntry) {
        self.entries.push(entry);
    }

    /// Number of logged writes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drain the entries in reverse (rollback) order.
    pub fn drain_rollback(&mut self) -> impl Iterator<Item = UndoEntry> + '_ {
        self.entries.drain(..).rev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollback_order_is_reverse() {
        let mut log = UndoLog::new();
        for v in 0..3 {
            log.push(UndoEntry {
                item: ItemId(1),
                old_value: Value::int(v),
                old_writer: None,
                old_version: v as u64,
            });
        }
        let versions: Vec<u64> = log.drain_rollback().map(|e| e.old_version).collect();
        assert_eq!(versions, vec![2, 1, 0]);
        assert!(log.is_empty());
    }

    #[test]
    fn repeated_writes_restore_oldest_preimage() {
        // Simulate: item starts at 10, txn writes 20 then 30; rollback in
        // reverse restores 20 then 10 — final state 10.
        let mut log = UndoLog::new();
        log.push(UndoEntry {
            item: ItemId(1),
            old_value: Value::int(10),
            old_writer: None,
            old_version: 0,
        });
        log.push(UndoEntry {
            item: ItemId(1),
            old_value: Value::int(20),
            old_writer: None,
            old_version: 1,
        });
        let mut current = Value::int(30);
        for e in log.drain_rollback() {
            current = e.old_value;
        }
        assert_eq!(current, Value::int(10));
    }
}
