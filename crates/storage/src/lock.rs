//! Strict two-phase locking with shared/exclusive modes.
//!
//! The §1.1 system model assumes every site runs strict 2PL: "a transaction
//! does not release any locks (read or write) until after it has committed".
//! This lock manager enforces exactly that discipline:
//!
//! * **Shared (S)** and **exclusive (X)** modes with the usual
//!   compatibility matrix, plus S→X **upgrades** (an upgrader is granted as
//!   soon as it is the sole holder, jumping the FIFO queue — the standard
//!   treatment that avoids trivial upgrade starvation);
//! * **FIFO wait queues**: a request is granted only when it is compatible
//!   with the current holders *and* no earlier request is still queued, so
//!   writers are never starved by a stream of readers;
//! * **Waits-for-graph deadlock detection** ([`LockManager::find_deadlock`])
//!   with the paper's fair victim policy — the *latest-arriving* transaction
//!   in the cycle is the victim, so a resubmitted secondary subtransaction
//!   (which keeps its original arrival ordinal via
//!   [`LockManager::set_arrival`]) is never chosen forever (§2: "some fair
//!   victim selection policy, e.g., the transaction which arrived at the
//!   site the latest, will have to be used").
//!
//! Timeout-based detection — what the prototype actually used (50 ms) — is
//! driven by the protocol engine's clock: the engine schedules a timer when
//! a request returns [`LockOutcome::Queued`] and calls
//! [`LockManager::cancel_wait`] + abort if it fires first.
//!
//! Because each transaction in the engine executes its operations
//! sequentially, a transaction waits on at most one item at a time; the
//! waits-for graph construction relies on this.

use std::collections::{HashMap, VecDeque};

use repl_types::trace::{self, TraceEvent};
use repl_types::{ItemId, TxnId};

/// Lock mode: shared (reads) or exclusive (writes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Shared — compatible with other shared locks.
    Shared,
    /// Exclusive — compatible with nothing.
    Exclusive,
}

/// Result of a lock request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockOutcome {
    /// The lock is held; the caller may proceed.
    Granted,
    /// The request was enqueued; the caller must suspend the transaction
    /// until a grant notification (or abort it on timeout).
    Queued,
}

#[derive(Clone, Debug)]
struct Request {
    txn: TxnId,
    mode: LockMode,
    /// True if the requester already holds S on the item (upgrade).
    upgrade: bool,
}

#[derive(Default, Debug)]
struct LockState {
    /// Current holders. Invariant: either any number of `Shared` entries or
    /// exactly one `Exclusive` entry; a transaction appears at most once.
    holders: Vec<(TxnId, LockMode)>,
    queue: VecDeque<Request>,
}

impl LockState {
    fn holder_mode(&self, txn: TxnId) -> Option<LockMode> {
        self.holders.iter().find(|(t, _)| *t == txn).map(|(_, m)| *m)
    }

    fn compatible(&self, mode: LockMode, requester: TxnId) -> bool {
        match mode {
            LockMode::Shared => {
                self.holders.iter().all(|(t, m)| *t == requester || *m == LockMode::Shared)
            }
            LockMode::Exclusive => self.holders.iter().all(|(t, _)| *t == requester),
        }
    }
}

/// The per-site lock manager.
#[derive(Debug)]
pub struct LockManager {
    table: HashMap<ItemId, LockState>,
    /// Items on which each transaction currently holds a lock.
    held: HashMap<TxnId, Vec<ItemId>>,
    /// The single item each blocked transaction is waiting on.
    waiting_on: HashMap<TxnId, ItemId>,
    /// Arrival ordinals for victim selection (latest arrival = victim).
    arrival: HashMap<TxnId, u64>,
    next_arrival: u64,
    /// Identity of this lock manager in happens-before traces.
    trace_scope: u64,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager {
            table: HashMap::new(),
            held: HashMap::new(),
            waiting_on: HashMap::new(),
            arrival: HashMap::new(),
            next_arrival: 0,
            trace_scope: trace::next_scope_id(),
        }
    }
}

impl LockManager {
    /// Create an empty lock manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scope identity under which this manager's lock events (and the
    /// owning store's slot accesses) appear in happens-before traces.
    pub fn trace_scope(&self) -> u64 {
        self.trace_scope
    }

    fn trace_acquire(&self, txn: TxnId, item: ItemId, mode: LockMode) {
        if trace::is_enabled() {
            trace::record(TraceEvent::LockAcquire {
                scope: self.trace_scope,
                item,
                txn,
                exclusive: mode == LockMode::Exclusive,
            });
        }
    }

    /// Register (or re-register) the arrival ordinal of `txn` explicitly.
    ///
    /// Used by the engine to keep a resubmitted secondary subtransaction's
    /// original arrival so the latest-arrival victim policy is fair to it.
    pub fn set_arrival(&mut self, txn: TxnId, ordinal: u64) {
        self.arrival.insert(txn, ordinal);
        self.next_arrival = self.next_arrival.max(ordinal + 1);
    }

    /// The arrival ordinal assigned to `txn`, if any.
    pub fn arrival_of(&self, txn: TxnId) -> Option<u64> {
        self.arrival.get(&txn).copied()
    }

    fn note_arrival(&mut self, txn: TxnId) {
        if !self.arrival.contains_key(&txn) {
            let ord = self.next_arrival;
            self.next_arrival += 1;
            self.arrival.insert(txn, ord);
        }
    }

    /// Does `txn` hold a lock on `item` at least as strong as `mode`?
    pub fn holds(&self, txn: TxnId, item: ItemId, mode: LockMode) -> bool {
        match self.table.get(&item).and_then(|s| s.holder_mode(txn)) {
            Some(LockMode::Exclusive) => true,
            Some(LockMode::Shared) => mode == LockMode::Shared,
            None => false,
        }
    }

    /// The item `txn` is currently blocked on, if any.
    pub fn waiting_on(&self, txn: TxnId) -> Option<ItemId> {
        self.waiting_on.get(&txn).copied()
    }

    /// Current holders of locks on `item` (any mode).
    pub fn holders_of(&self, item: ItemId) -> Vec<TxnId> {
        self.table
            .get(&item)
            .map(|s| s.holders.iter().map(|(t, _)| *t).collect())
            .unwrap_or_default()
    }

    /// Items currently locked by `txn`.
    pub fn held_items(&self, txn: TxnId) -> &[ItemId] {
        self.held.get(&txn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of transactions currently blocked.
    pub fn blocked_count(&self) -> usize {
        self.waiting_on.len()
    }

    /// Request `mode` on `item` for `txn`.
    ///
    /// Re-entrant: requesting a mode already covered by a held lock is an
    /// immediate grant; requesting X while holding S is an upgrade.
    pub fn request(&mut self, txn: TxnId, item: ItemId, mode: LockMode) -> LockOutcome {
        self.note_arrival(txn);
        debug_assert!(
            !self.waiting_on.contains_key(&txn),
            "transaction {txn:?} issued a lock request while already blocked"
        );
        let state = self.table.entry(item).or_default();
        match state.holder_mode(txn) {
            Some(LockMode::Exclusive) => LockOutcome::Granted,
            Some(LockMode::Shared) if mode == LockMode::Shared => LockOutcome::Granted,
            Some(LockMode::Shared) => {
                // Upgrade. Granted immediately iff sole holder; otherwise
                // the upgrade request jumps ahead of plain requests but
                // behind earlier upgrades.
                if state.holders.len() == 1 {
                    state.holders[0].1 = LockMode::Exclusive;
                    self.trace_acquire(txn, item, LockMode::Exclusive);
                    LockOutcome::Granted
                } else {
                    let pos = state.queue.iter().take_while(|r| r.upgrade).count();
                    state
                        .queue
                        .insert(pos, Request { txn, mode: LockMode::Exclusive, upgrade: true });
                    self.waiting_on.insert(txn, item);
                    LockOutcome::Queued
                }
            }
            None => {
                if state.queue.is_empty() && state.compatible(mode, txn) {
                    state.holders.push((txn, mode));
                    self.held.entry(txn).or_default().push(item);
                    self.trace_acquire(txn, item, mode);
                    LockOutcome::Granted
                } else {
                    state.queue.push_back(Request { txn, mode, upgrade: false });
                    self.waiting_on.insert(txn, item);
                    LockOutcome::Queued
                }
            }
        }
    }

    /// Grant as many queued requests on `item` as the FIFO-prefix policy
    /// allows, returning the transactions whose requests were granted.
    fn pump(&mut self, item: ItemId) -> Vec<TxnId> {
        let mut granted = Vec::new();
        let Some(state) = self.table.get_mut(&item) else {
            return granted;
        };
        while let Some(front) = state.queue.front() {
            let txn = front.txn;
            let granted_mode;
            if front.upgrade {
                // Upgrade grantable only when the upgrader is the sole
                // remaining holder.
                if state.holders.len() == 1 && state.holders[0].0 == txn {
                    state.holders[0].1 = LockMode::Exclusive;
                    granted_mode = LockMode::Exclusive;
                } else {
                    break;
                }
            } else if state.compatible(front.mode, txn) {
                let mode = front.mode;
                state.holders.push((txn, mode));
                self.held.entry(txn).or_default().push(item);
                granted_mode = mode;
            } else {
                break;
            }
            state.queue.pop_front();
            self.waiting_on.remove(&txn);
            if trace::is_enabled() {
                trace::record(TraceEvent::LockAcquire {
                    scope: self.trace_scope,
                    item,
                    txn,
                    exclusive: granted_mode == LockMode::Exclusive,
                });
            }
            granted.push(txn);
        }
        if state.holders.is_empty() && state.queue.is_empty() {
            self.table.remove(&item);
        }
        granted
    }

    /// Release every lock held by `txn` (strict 2PL: called exactly once,
    /// at commit or abort) and drop any queued request it still has.
    ///
    /// Returns the transactions whose queued requests became granted.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<TxnId> {
        // Cancelling a queued request can itself unblock later requests
        // (e.g. removing a queued X lets queued S requests through);
        // those grants must be reported too or the wakeup is lost.
        let mut granted = self.cancel_wait(txn);
        self.arrival.remove(&txn);
        let items = self.held.remove(&txn).unwrap_or_default();
        for item in items {
            if let Some(state) = self.table.get_mut(&item) {
                state.holders.retain(|(t, _)| *t != txn);
            }
            if trace::is_enabled() {
                trace::record(TraceEvent::LockRelease { scope: self.trace_scope, item, txn });
            }
            granted.extend(self.pump(item));
        }
        granted
    }

    /// Remove `txn`'s queued request (used when a blocked transaction is
    /// aborted by timeout). Returns transactions unblocked as a side effect
    /// — removing a queued X request can let later S requests through.
    pub fn cancel_wait(&mut self, txn: TxnId) -> Vec<TxnId> {
        let Some(item) = self.waiting_on.remove(&txn) else {
            return Vec::new();
        };
        if let Some(state) = self.table.get_mut(&item) {
            state.queue.retain(|r| r.txn != txn);
        }
        self.pump(item)
    }

    /// Build the waits-for graph and search it for a cycle.
    ///
    /// A blocked transaction waits for (a) every current holder of the item
    /// it wants and (b) every request queued ahead of it — (b) is exact,
    /// not conservative, because grants are strictly FIFO-prefix. Returns
    /// the transactions forming one cycle, or `None`.
    pub fn find_deadlock(&self) -> Option<Vec<TxnId>> {
        let mut edges: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        for (&waiter, &item) in &self.waiting_on {
            let Some(state) = self.table.get(&item) else { continue };
            let mut blockers = Vec::new();
            for (holder, _) in &state.holders {
                if *holder != waiter {
                    blockers.push(*holder);
                }
            }
            for r in &state.queue {
                if r.txn == waiter {
                    break;
                }
                blockers.push(r.txn);
            }
            edges.insert(waiter, blockers);
        }

        // Iterative DFS over blocked transactions only (a cycle must consist
        // entirely of blocked transactions).
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: HashMap<TxnId, Color> = HashMap::new();
        for &start in edges.keys() {
            if *color.get(&start).unwrap_or(&Color::White) != Color::White {
                continue;
            }
            // stack of (node, next-edge-index); path tracks the grey chain.
            let mut stack = vec![(start, 0usize)];
            let mut path = vec![start];
            color.insert(start, Color::Grey);
            while let Some(&mut (node, ref mut edge_idx)) = stack.last_mut() {
                let succs = edges.get(&node).map(Vec::as_slice).unwrap_or(&[]);
                if *edge_idx < succs.len() {
                    let next = succs[*edge_idx];
                    *edge_idx += 1;
                    // Only blocked transactions can be part of a cycle.
                    if !edges.contains_key(&next) {
                        continue;
                    }
                    match color.get(&next).copied().unwrap_or(Color::White) {
                        Color::Grey => {
                            // Found a cycle: slice the grey path from next.
                            let pos = path.iter().position(|&t| t == next).unwrap();
                            return Some(path[pos..].to_vec());
                        }
                        Color::White => {
                            color.insert(next, Color::Grey);
                            stack.push((next, 0));
                            path.push(next);
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(node, Color::Black);
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }

    /// Pick the deadlock victim from a cycle: the latest-arriving
    /// transaction (the paper's fair policy).
    pub fn pick_victim(&self, cycle: &[TxnId]) -> TxnId {
        *cycle
            .iter()
            .max_by_key(|t| self.arrival.get(t).copied().unwrap_or(u64::MAX))
            .expect("cycle is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }
    fn i(n: u32) -> ItemId {
        ItemId(n)
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(lm.request(t(1), i(1), LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.request(t(2), i(1), LockMode::Shared), LockOutcome::Granted);
        assert!(lm.holds(t(1), i(1), LockMode::Shared));
        assert!(lm.holds(t(2), i(1), LockMode::Shared));
        assert!(!lm.holds(t(1), i(1), LockMode::Exclusive));
    }

    #[test]
    fn exclusive_blocks_everything() {
        let mut lm = LockManager::new();
        assert_eq!(lm.request(t(1), i(1), LockMode::Exclusive), LockOutcome::Granted);
        assert_eq!(lm.request(t(2), i(1), LockMode::Shared), LockOutcome::Queued);
        assert_eq!(lm.request(t(3), i(1), LockMode::Exclusive), LockOutcome::Queued);
        assert_eq!(lm.waiting_on(t(2)), Some(i(1)));

        let granted = lm.release_all(t(1));
        // FIFO: the shared request (first) is granted; the exclusive one
        // behind it must keep waiting.
        assert_eq!(granted, vec![t(2)]);
        assert!(lm.holds(t(2), i(1), LockMode::Shared));
        assert_eq!(lm.waiting_on(t(3)), Some(i(1)));
    }

    #[test]
    fn fifo_prevents_writer_starvation() {
        let mut lm = LockManager::new();
        lm.request(t(1), i(1), LockMode::Shared);
        lm.request(t(2), i(1), LockMode::Exclusive); // queued
                                                     // A later shared request must NOT jump the queued writer.
        assert_eq!(lm.request(t(3), i(1), LockMode::Shared), LockOutcome::Queued);
        let granted = lm.release_all(t(1));
        assert_eq!(granted, vec![t(2)]);
        assert!(lm.holds(t(2), i(1), LockMode::Exclusive));
        let granted = lm.release_all(t(2));
        assert_eq!(granted, vec![t(3)]);
    }

    #[test]
    fn reentrant_grants() {
        let mut lm = LockManager::new();
        lm.request(t(1), i(1), LockMode::Exclusive);
        assert_eq!(lm.request(t(1), i(1), LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.request(t(1), i(1), LockMode::Exclusive), LockOutcome::Granted);
    }

    #[test]
    fn upgrade_sole_holder_immediate() {
        let mut lm = LockManager::new();
        lm.request(t(1), i(1), LockMode::Shared);
        assert_eq!(lm.request(t(1), i(1), LockMode::Exclusive), LockOutcome::Granted);
        assert!(lm.holds(t(1), i(1), LockMode::Exclusive));
    }

    #[test]
    fn upgrade_waits_for_other_readers_then_jumps_queue() {
        let mut lm = LockManager::new();
        lm.request(t(1), i(1), LockMode::Shared);
        lm.request(t(2), i(1), LockMode::Shared);
        // t3 queues a plain X request first.
        assert_eq!(lm.request(t(3), i(1), LockMode::Exclusive), LockOutcome::Queued);
        // t1's upgrade must be ordered ahead of t3's request.
        assert_eq!(lm.request(t(1), i(1), LockMode::Exclusive), LockOutcome::Queued);
        let granted = lm.release_all(t(2));
        assert_eq!(granted, vec![t(1)]);
        assert!(lm.holds(t(1), i(1), LockMode::Exclusive));
        // t3 still waits.
        assert_eq!(lm.waiting_on(t(3)), Some(i(1)));
    }

    #[test]
    fn double_upgrade_is_a_deadlock() {
        let mut lm = LockManager::new();
        lm.request(t(1), i(1), LockMode::Shared);
        lm.request(t(2), i(1), LockMode::Shared);
        assert_eq!(lm.request(t(1), i(1), LockMode::Exclusive), LockOutcome::Queued);
        assert_eq!(lm.request(t(2), i(1), LockMode::Exclusive), LockOutcome::Queued);
        let cycle = lm.find_deadlock().expect("double upgrade must deadlock");
        assert!(cycle.contains(&t(1)) && cycle.contains(&t(2)));
        // Latest arrival is t2.
        assert_eq!(lm.pick_victim(&cycle), t(2));
    }

    #[test]
    fn classic_two_txn_deadlock_detected() {
        let mut lm = LockManager::new();
        lm.request(t(1), i(1), LockMode::Exclusive);
        lm.request(t(2), i(2), LockMode::Exclusive);
        assert_eq!(lm.request(t(1), i(2), LockMode::Exclusive), LockOutcome::Queued);
        assert_eq!(lm.request(t(2), i(1), LockMode::Exclusive), LockOutcome::Queued);
        let cycle = lm.find_deadlock().expect("deadlock");
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn no_false_deadlock_on_simple_waits() {
        let mut lm = LockManager::new();
        lm.request(t(1), i(1), LockMode::Exclusive);
        lm.request(t(2), i(1), LockMode::Exclusive);
        lm.request(t(3), i(1), LockMode::Shared);
        assert!(lm.find_deadlock().is_none());
    }

    #[test]
    fn three_txn_cycle() {
        let mut lm = LockManager::new();
        lm.request(t(1), i(1), LockMode::Exclusive);
        lm.request(t(2), i(2), LockMode::Exclusive);
        lm.request(t(3), i(3), LockMode::Exclusive);
        lm.request(t(1), i(2), LockMode::Exclusive);
        lm.request(t(2), i(3), LockMode::Exclusive);
        lm.request(t(3), i(1), LockMode::Exclusive);
        let cycle = lm.find_deadlock().expect("3-cycle");
        assert_eq!(cycle.len(), 3);
        assert_eq!(lm.pick_victim(&cycle), t(3));
    }

    #[test]
    fn cancel_wait_unblocks_followers() {
        let mut lm = LockManager::new();
        lm.request(t(1), i(1), LockMode::Shared);
        lm.request(t(2), i(1), LockMode::Exclusive); // queued
        lm.request(t(3), i(1), LockMode::Shared); // queued behind X
                                                  // Aborting the queued writer lets the reader through.
        let granted = lm.cancel_wait(t(2));
        assert_eq!(granted, vec![t(3)]);
        assert!(lm.holds(t(3), i(1), LockMode::Shared));
    }

    #[test]
    fn release_all_clears_everything() {
        let mut lm = LockManager::new();
        lm.request(t(1), i(1), LockMode::Exclusive);
        lm.request(t(1), i(2), LockMode::Shared);
        assert_eq!(lm.held_items(t(1)).len(), 2);
        lm.release_all(t(1));
        assert!(lm.held_items(t(1)).is_empty());
        assert!(!lm.holds(t(1), i(1), LockMode::Shared));
    }

    #[test]
    fn victim_respects_explicit_arrival() {
        let mut lm = LockManager::new();
        // Simulate a resubmitted secondary keeping an old arrival ordinal.
        lm.set_arrival(t(10), 0);
        lm.request(t(10), i(1), LockMode::Exclusive);
        lm.request(t(11), i(2), LockMode::Exclusive);
        lm.request(t(10), i(2), LockMode::Exclusive);
        lm.request(t(11), i(1), LockMode::Exclusive);
        let cycle = lm.find_deadlock().unwrap();
        assert_eq!(lm.pick_victim(&cycle), t(11));
    }

    #[test]
    fn blocked_count_tracks_waiters() {
        let mut lm = LockManager::new();
        lm.request(t(1), i(1), LockMode::Exclusive);
        assert_eq!(lm.blocked_count(), 0);
        lm.request(t(2), i(1), LockMode::Shared);
        assert_eq!(lm.blocked_count(), 1);
        lm.release_all(t(1));
        assert_eq!(lm.blocked_count(), 0);
    }
}
