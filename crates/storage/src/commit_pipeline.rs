//! Group commit: amortize the durable append across a batch.
//!
//! The durable path previously paid one WAL append (and, on a real
//! device, one fsync) per commit. Group commit is the standard fix:
//! commits *enqueue* into a [`CommitBatch`]; when the batch reaches the
//! configured size — or the driver reaches a sync point with work
//! pending — one [`CommitPipeline::flush`] appends every record of the
//! batch to the log in enqueue order and pays the fsync-equivalent cost
//! once. Acknowledgements are released only at flush, **in batch
//! (enqueue) order**: an earlier commit is never acknowledged after a
//! later one, so the ack stream stays consistent with both the WAL order
//! and the per-site commit order the propagation protocols rely on.
//!
//! With `max_batch == 1` (the default everywhere) every enqueue flushes
//! immediately and the pipeline is byte-for-byte equivalent to the old
//! direct-append path — existing tests, recovery images and the
//! differential matrix see no change.

use repl_types::{GlobalTxnId, ItemId, Value};

use crate::wal::{LogRecord, WriteAheadLog};

/// One enqueued commit awaiting the batch flush.
#[derive(Clone, Debug)]
struct PendingCommit {
    gid: GlobalTxnId,
    /// The commit's deduplicated write set, in write order.
    writes: Vec<(ItemId, Value)>,
}

/// The commits accumulated since the last flush, in enqueue order.
#[derive(Clone, Debug, Default)]
pub struct CommitBatch {
    entries: Vec<PendingCommit>,
}

impl CommitBatch {
    /// Commits currently in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Counters a bench or an operator can read off the pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Commits enqueued since creation.
    pub commits: u64,
    /// Batch flushes performed (each costs one fsync-equivalent).
    pub flushes: u64,
    /// Log records written across all flushes.
    pub records: u64,
}

/// The group-commit pipeline in front of a [`WriteAheadLog`].
#[derive(Clone, Debug)]
pub struct CommitPipeline {
    max_batch: usize,
    batch: CommitBatch,
    stats: PipelineStats,
}

impl Default for CommitPipeline {
    fn default() -> Self {
        CommitPipeline::new(1)
    }
}

impl CommitPipeline {
    /// A pipeline flushing every `max_batch` commits (`0` is treated as
    /// `1`: flush on every commit, the classic non-batched path).
    pub fn new(max_batch: usize) -> Self {
        CommitPipeline {
            max_batch: max_batch.max(1),
            batch: CommitBatch::default(),
            stats: PipelineStats::default(),
        }
    }

    /// The configured batch size.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Enqueue one commit's write set. Returns `true` when the batch is
    /// full and the caller must [`CommitPipeline::flush`] before
    /// releasing the commit's acknowledgement.
    pub fn enqueue(&mut self, gid: GlobalTxnId, writes: Vec<(ItemId, Value)>) -> bool {
        self.stats.commits += 1;
        self.batch.entries.push(PendingCommit { gid, writes });
        self.batch.entries.len() >= self.max_batch
    }

    /// Commits enqueued but not yet flushed.
    pub fn pending(&self) -> usize {
        self.batch.entries.len()
    }

    /// Flush the batch: append every pending record to `wal` in enqueue
    /// order, pay one fsync-equivalent, and return the gids whose
    /// acknowledgements may now be released — in batch order. A flush
    /// with nothing pending is free (no fsync, empty ack list).
    pub fn flush(&mut self, wal: &mut WriteAheadLog) -> Vec<GlobalTxnId> {
        if self.batch.entries.is_empty() {
            return Vec::new();
        }
        self.stats.flushes += 1;
        let entries = std::mem::take(&mut self.batch.entries);
        let mut acks = Vec::with_capacity(entries.len());
        for commit in entries {
            for (item, value) in &commit.writes {
                self.stats.records += 1;
                wal.append(LogRecord { item: *item, value: value.clone(), writer: commit.gid });
            }
            acks.push(commit.gid);
        }
        acks
    }

    /// The pipeline's counters so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_types::SiteId;

    fn gid(n: u64) -> GlobalTxnId {
        GlobalTxnId::new(SiteId(0), n)
    }

    #[test]
    fn batch_of_one_flushes_every_commit() {
        let mut p = CommitPipeline::new(1);
        let mut wal = WriteAheadLog::new();
        assert!(p.enqueue(gid(1), vec![(ItemId(0), Value::int(1))]));
        assert_eq!(p.flush(&mut wal), vec![gid(1)]);
        assert!(p.enqueue(gid(2), vec![(ItemId(1), Value::int(2))]));
        assert_eq!(p.flush(&mut wal), vec![gid(2)]);
        assert_eq!(wal.len(), 2);
        assert_eq!(p.stats(), PipelineStats { commits: 2, flushes: 2, records: 2 });
    }

    #[test]
    fn batched_flush_amortizes_and_preserves_order() {
        let mut p = CommitPipeline::new(3);
        let mut wal = WriteAheadLog::new();
        assert!(!p.enqueue(gid(1), vec![(ItemId(0), Value::int(10))]));
        assert!(!p.enqueue(gid(2), vec![(ItemId(1), Value::int(20)), (ItemId(2), Value::int(21))]));
        assert_eq!(p.pending(), 2);
        assert!(p.enqueue(gid(3), vec![(ItemId(0), Value::int(30))]));
        // One flush, acks in enqueue order.
        assert_eq!(p.flush(&mut wal), vec![gid(1), gid(2), gid(3)]);
        assert_eq!(p.pending(), 0);
        assert_eq!(p.stats(), PipelineStats { commits: 3, flushes: 1, records: 4 });
        // WAL record order matches enqueue order, per-commit write order.
        let writers: Vec<_> = wal.records().iter().map(|r| r.writer).collect();
        assert_eq!(writers, vec![gid(1), gid(2), gid(2), gid(3)]);
        assert_eq!(wal.records()[1].item, ItemId(1));
        assert_eq!(wal.records()[2].item, ItemId(2));
    }

    #[test]
    fn empty_flush_is_free() {
        let mut p = CommitPipeline::new(8);
        let mut wal = WriteAheadLog::new();
        assert!(p.flush(&mut wal).is_empty());
        assert_eq!(p.stats().flushes, 0);
    }

    #[test]
    fn wal_matches_direct_append_for_any_batch_size() {
        // Recovery equivalence: the same commit stream through any batch
        // size produces the identical log image.
        let commits: Vec<(GlobalTxnId, Vec<(ItemId, Value)>)> = (0..10u64)
            .map(|i| (gid(i), vec![(ItemId((i % 3) as u32), Value::int(i as i64 * 7))]))
            .collect();
        let mut direct = WriteAheadLog::new();
        for (g, writes) in &commits {
            direct.append_commit(*g, writes);
        }
        for batch in [1usize, 3, 8, 64] {
            let mut p = CommitPipeline::new(batch);
            let mut wal = WriteAheadLog::new();
            let mut acks = Vec::new();
            for (g, writes) in &commits {
                if p.enqueue(*g, writes.clone()) {
                    acks.extend(p.flush(&mut wal));
                }
            }
            acks.extend(p.flush(&mut wal));
            assert_eq!(wal.encode(), direct.encode(), "batch={batch}");
            assert_eq!(acks, commits.iter().map(|(g, _)| *g).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_batch_behaves_as_one() {
        let p = CommitPipeline::new(0);
        assert_eq!(p.max_batch(), 1);
    }
}
