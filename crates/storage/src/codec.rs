//! Shared binary codec helpers for values and transaction ids.
//!
//! The WAL image format ([`crate::wal`]) and the network wire format
//! (`repl-net`) serialize the same primitives — [`Value`] payloads and
//! [`GlobalTxnId`]s — and must agree on their byte layout so a WAL
//! record and a propagation record describing the same write are
//! bit-compatible. This module is that single source of truth.
//!
//! Decoding is *total*: any input produces `Ok` or a clean
//! [`CodecError`], never a panic, and length headers are distrusted —
//! a claimed length is checked against the bytes actually remaining
//! before any allocation sized from it.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use repl_types::{GlobalTxnId, ItemId, SiteId, Value};

/// Errors raised while decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended mid-field.
    Truncated,
    /// Unknown discriminant tag.
    BadTag(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::BadTag(t) => write!(f, "unknown tag {t}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encode a value: tag byte, then the payload.
/// Tags: `0` Initial, `1` Int (i64), `2` Bytes (u64 length + bytes).
pub fn put_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Initial => buf.put_u8(0),
        Value::Int(v) => {
            buf.put_u8(1);
            buf.put_i64(*v);
        }
        Value::Bytes(b) => {
            buf.put_u8(2);
            buf.put_u64(b.len() as u64);
            buf.put_slice(b);
        }
    }
}

/// Decode a value written by [`put_value`].
pub fn get_value(buf: &mut Bytes) -> Result<Value, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    match buf.get_u8() {
        0 => Ok(Value::Initial),
        1 => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Ok(Value::Int(buf.get_i64()))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            let len = buf.get_u64() as usize;
            if buf.remaining() < len {
                return Err(CodecError::Truncated);
            }
            Ok(Value::Bytes(buf.copy_to_bytes(len).to_vec()))
        }
        t => Err(CodecError::BadTag(t)),
    }
}

/// Encode a global transaction id: origin site (u32) + sequence (u64).
pub fn put_gid(buf: &mut BytesMut, gid: GlobalTxnId) {
    buf.put_u32(gid.origin.0);
    buf.put_u64(gid.seq);
}

/// Decode a global transaction id written by [`put_gid`].
pub fn get_gid(buf: &mut Bytes) -> Result<GlobalTxnId, CodecError> {
    if buf.remaining() < 12 {
        return Err(CodecError::Truncated);
    }
    let origin = SiteId(buf.get_u32());
    let seq = buf.get_u64();
    Ok(GlobalTxnId::new(origin, seq))
}

/// Decode a `u32` with a truncation check.
pub fn get_u32(buf: &mut Bytes) -> Result<u32, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u32())
}

/// Decode a `u64` with a truncation check.
pub fn get_u64(buf: &mut Bytes) -> Result<u64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u64())
}

/// Decode a `u8` with a truncation check.
pub fn get_u8(buf: &mut Bytes) -> Result<u8, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u8())
}

/// Encode a UTF-8 string: u32 length + bytes.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Decode a string written by [`put_str`]. Invalid UTF-8 is a
/// [`CodecError::BadTag`]-class error (the input is hostile, not short).
pub fn get_str(buf: &mut Bytes) -> Result<String, CodecError> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    String::from_utf8(buf.copy_to_bytes(len).to_vec()).map_err(|_| CodecError::BadTag(0xFF))
}

/// Encode one copy-state cell: `(item, value, writer)`.
pub fn put_cell(buf: &mut BytesMut, item: ItemId, value: &Value, writer: Option<GlobalTxnId>) {
    buf.put_u32(item.0);
    put_value(buf, value);
    match writer {
        None => buf.put_u8(0),
        Some(gid) => {
            buf.put_u8(1);
            put_gid(buf, gid);
        }
    }
}

/// Decode one cell written by [`put_cell`].
pub fn get_cell(buf: &mut Bytes) -> Result<(ItemId, Value, Option<GlobalTxnId>), CodecError> {
    let item = ItemId(get_u32(buf)?);
    let value = get_value(buf)?;
    let writer = match get_u8(buf)? {
        0 => None,
        1 => Some(get_gid(buf)?),
        t => return Err(CodecError::BadTag(t)),
    };
    Ok((item, value, writer))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: Value) {
        let mut buf = BytesMut::new();
        put_value(&mut buf, &v);
        let mut bytes = buf.freeze();
        assert_eq!(get_value(&mut bytes).unwrap(), v);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn value_roundtrips() {
        roundtrip_value(Value::Initial);
        roundtrip_value(Value::int(i64::MIN));
        roundtrip_value(Value::Bytes(vec![0, 255, 7]));
        roundtrip_value(Value::Bytes(Vec::new()));
    }

    #[test]
    fn gid_and_cell_roundtrip() {
        let gid = GlobalTxnId::new(SiteId(3), 42);
        let mut buf = BytesMut::new();
        put_gid(&mut buf, gid);
        put_cell(&mut buf, ItemId(7), &Value::int(9), Some(gid));
        put_cell(&mut buf, ItemId(8), &Value::Initial, None);
        let mut bytes = buf.freeze();
        assert_eq!(get_gid(&mut bytes).unwrap(), gid);
        assert_eq!(get_cell(&mut bytes).unwrap(), (ItemId(7), Value::int(9), Some(gid)));
        assert_eq!(get_cell(&mut bytes).unwrap(), (ItemId(8), Value::Initial, None));
    }

    #[test]
    fn truncations_are_errors() {
        let mut buf = BytesMut::new();
        put_value(&mut buf, &Value::Bytes(vec![1, 2, 3, 4]));
        let bytes = buf.freeze();
        for cut in 0..bytes.len() {
            let mut sliced = bytes.slice(0..cut);
            assert!(get_value(&mut sliced).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bad_tags_are_errors() {
        let mut bytes = Bytes::from_static(&[9]);
        assert_eq!(get_value(&mut bytes), Err(CodecError::BadTag(9)));
        let mut s = Bytes::from_static(&[0, 0, 0, 2, 0xFF, 0xFE]);
        assert!(get_str(&mut s).is_err());
    }

    #[test]
    fn oversized_length_header_is_truncation_not_allocation() {
        // Claims a 2^60-byte payload with 2 bytes present.
        let mut buf = BytesMut::new();
        buf.put_u8(2);
        buf.put_u64(1 << 60);
        buf.put_slice(&[1, 2]);
        let mut bytes = buf.freeze();
        assert_eq!(get_value(&mut bytes), Err(CodecError::Truncated));
    }
}
