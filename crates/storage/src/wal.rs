//! Redo logging and recovery.
//!
//! DataBlitz was a *recoverable* main-memory storage manager; the paper's
//! protocols additionally assume a committed transaction's updates are
//! never lost (a secondary subtransaction is forwarded only after the
//! upstream commit is durable). This module provides the corresponding
//! machinery for [`crate::Store`]:
//!
//! * a redo [`WriteAheadLog`] holding one [`LogRecord`] per committed
//!   write, in commit order, with a serialized byte form
//!   ([`WriteAheadLog::encode`] / [`WriteAheadLog::decode`]) built on
//!   `bytes` so it can be shipped or persisted;
//! * [`checkpoint`] — snapshot a store's committed state;
//! * [`recover`] — rebuild a store from a checkpoint plus a log suffix,
//!   idempotently (replaying a prefix twice is harmless because records
//!   install absolute values, not deltas).
//!
//! Aborted transactions never reach the log: the engine's undo logging
//! rolls them back in place, so the redo log is purely "commit order of
//! installed values" — which is also exactly the order secondary
//! subtransactions carry updates in.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use repl_types::{GlobalTxnId, ItemId, Value};

use crate::codec::{self, CodecError};
use crate::store::Store;

/// One committed write, as replayed during recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// Item written.
    pub item: ItemId,
    /// Value installed.
    pub value: Value,
    /// Logical writer of the version.
    pub writer: GlobalTxnId,
}

/// An in-memory redo log with a stable wire encoding.
#[derive(Clone, Debug, Default)]
pub struct WriteAheadLog {
    records: Vec<LogRecord>,
}

/// Errors raised when decoding a log image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// The buffer ended mid-record.
    Truncated,
    /// Unknown value-type tag.
    BadTag(u8),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Truncated => write!(f, "log image truncated"),
            WalError::BadTag(t) => write!(f, "unknown value tag {t}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<CodecError> for WalError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated => WalError::Truncated,
            CodecError::BadTag(t) => WalError::BadTag(t),
        }
    }
}

impl WriteAheadLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a committed write.
    pub fn append(&mut self, record: LogRecord) {
        self.records.push(record);
    }

    /// Append every write of a commit, in write order.
    pub fn append_commit(&mut self, writer: GlobalTxnId, writes: &[(ItemId, Value)]) {
        for (item, value) in writes {
            self.append(LogRecord { item: *item, value: value.clone(), writer });
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in commit order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Drop the first `n` records — everything already covered by a
    /// [`Checkpoint`] taken after they committed.
    ///
    /// Without truncation the in-memory log grows without bound for the
    /// lifetime of a site. Dropping a checkpointed prefix is safe
    /// because recovery replays *absolute* values over the checkpoint
    /// image: [`recover`]`(checkpoint, truncated)` is identical to
    /// replaying the full log (pinned by
    /// `truncated_log_recovers_identically`). `n` larger than the log
    /// clears it.
    pub fn truncate_prefix(&mut self, n: usize) {
        let n = n.min(self.records.len());
        self.records.drain(..n);
    }

    /// Serialize the whole log.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.records.len() * 32);
        buf.put_u64(self.records.len() as u64);
        for r in &self.records {
            buf.put_u32(r.item.0);
            codec::put_gid(&mut buf, r.writer);
            codec::put_value(&mut buf, &r.value);
        }
        buf.freeze()
    }

    /// Deserialize a log image produced by [`WriteAheadLog::encode`].
    pub fn decode(mut buf: Bytes) -> Result<Self, WalError> {
        if buf.remaining() < 8 {
            return Err(WalError::Truncated);
        }
        let n = buf.get_u64() as usize;
        // Distrust the claimed count: a corrupt or adversarial header can
        // claim 2^64 records. Pre-allocate at most what the remaining
        // bytes could possibly hold (17 bytes is the smallest record).
        let mut records = Vec::with_capacity(n.min(buf.remaining() / 17));
        for _ in 0..n {
            let item = ItemId(codec::get_u32(&mut buf)?);
            let writer = codec::get_gid(&mut buf)?;
            let value = codec::get_value(&mut buf)?;
            records.push(LogRecord { item, value, writer });
        }
        Ok(WriteAheadLog { records })
    }
}

/// A snapshot of a store's committed item state.
#[derive(Clone, Debug, Default)]
pub struct Checkpoint {
    /// `(item, value, writer)` triples for every copy at the site.
    pub cells: Vec<(ItemId, Value, Option<GlobalTxnId>)>,
}

/// Snapshot `store`'s committed state.
///
/// Must be taken at a quiescent point (no active transactions) — the
/// engine checkpoints between event dispatches, where this always holds.
pub fn checkpoint(store: &Store, items: impl Iterator<Item = ItemId>) -> Checkpoint {
    let cells =
        items.filter_map(|item| store.peek(item).map(|r| (item, r.value, r.writer))).collect();
    Checkpoint { cells }
}

/// Rebuild a store from a checkpoint and replay a redo-log suffix over it.
///
/// Replay is idempotent: records install absolute values, so replaying an
/// already-applied prefix changes nothing.
pub fn recover(checkpoint: &Checkpoint, log: &WriteAheadLog) -> Store {
    let mut store = Store::new();
    for (item, value, _writer) in &checkpoint.cells {
        store.create_item(*item, value.clone());
    }
    // Writers from the checkpoint are restored through replay; items whose
    // last writer predates the log suffix keep the checkpointed value.
    for r in log.records() {
        if store.has_item(r.item) {
            let txn = store.begin();
            store
                .write(txn, r.item, r.value.clone(), r.writer)
                .expect("recovery replays onto an idle store");
            store.commit(txn).expect("recovery commit");
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use repl_types::SiteId;

    fn gid(site: u32, seq: u64) -> GlobalTxnId {
        GlobalTxnId::new(SiteId(site), seq)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut wal = WriteAheadLog::new();
        wal.append(LogRecord { item: ItemId(1), value: Value::Initial, writer: gid(0, 1) });
        wal.append(LogRecord { item: ItemId(2), value: Value::int(-5), writer: gid(1, 2) });
        wal.append(LogRecord {
            item: ItemId(3),
            value: Value::Bytes(vec![1, 2, 3]),
            writer: gid(2, 3),
        });
        let decoded = WriteAheadLog::decode(wal.encode()).unwrap();
        assert_eq!(decoded.records(), wal.records());
    }

    #[test]
    fn truncated_images_are_rejected() {
        let mut wal = WriteAheadLog::new();
        wal.append_commit(gid(0, 1), &[(ItemId(1), Value::int(9))]);
        let bytes = wal.encode();
        for cut in 0..bytes.len() {
            let sliced = bytes.slice(0..cut);
            assert!(WriteAheadLog::decode(sliced).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut wal = WriteAheadLog::new();
        wal.append(LogRecord { item: ItemId(1), value: Value::int(1), writer: gid(0, 0) });
        let mut raw = wal.encode().to_vec();
        // The tag byte sits after count(8) + item(4) + origin(4) + seq(8).
        raw[24] = 99;
        assert_eq!(WriteAheadLog::decode(Bytes::from(raw)).err(), Some(WalError::BadTag(99)));
    }

    #[test]
    fn recovery_replays_committed_writes() {
        let mut store = Store::new();
        let mut wal = WriteAheadLog::new();
        for i in 0..4u32 {
            store.create_item(ItemId(i), Value::Initial);
        }
        let cp = checkpoint(&store, (0..4).map(ItemId));

        // Two committed transactions, one aborted (not logged).
        let t1 = store.begin();
        store.write(t1, ItemId(0), Value::int(10), gid(0, 1)).unwrap();
        store.write(t1, ItemId(1), Value::int(11), gid(0, 1)).unwrap();
        let (info, _) = store.commit(t1).unwrap();
        wal.append_commit(gid(0, 1), &info.write_set());

        let t2 = store.begin();
        store.write(t2, ItemId(2), Value::int(999), gid(0, 2)).unwrap();
        store.abort(t2).unwrap();

        let t3 = store.begin();
        store.write(t3, ItemId(0), Value::int(20), gid(0, 3)).unwrap();
        let (info, _) = store.commit(t3).unwrap();
        wal.append_commit(gid(0, 3), &info.write_set());

        let recovered = recover(&cp, &wal);
        assert_eq!(recovered.peek(ItemId(0)).unwrap().value, Value::int(20));
        assert_eq!(recovered.peek(ItemId(0)).unwrap().writer, Some(gid(0, 3)));
        assert_eq!(recovered.peek(ItemId(1)).unwrap().value, Value::int(11));
        assert_eq!(recovered.peek(ItemId(2)).unwrap().value, Value::Initial);
    }

    #[test]
    fn truncated_log_recovers_identically() {
        // Run a store forward, checkpointing mid-stream; recovery from
        // (checkpoint, truncated suffix) must equal recovery from
        // (boot image, full log).
        let mut store = Store::new();
        let mut wal = WriteAheadLog::new();
        for i in 0..4u32 {
            store.create_item(ItemId(i), Value::Initial);
        }
        let boot = checkpoint(&store, (0..4).map(ItemId));
        for seq in 0..10u64 {
            let w = gid(0, seq);
            let t = store.begin();
            store.write(t, ItemId((seq % 4) as u32), Value::int(seq as i64 * 3), w).unwrap();
            let (info, _) = store.commit(t).unwrap();
            wal.append_commit(w, &info.write_set());
        }
        // Checkpoint after the first six records; truncate them away.
        let full = recover(&boot, &wal);
        let mid_wal = WriteAheadLog { records: wal.records()[..6].to_vec() };
        let mid_store = recover(&boot, &mid_wal);
        let cp = checkpoint(&mid_store, (0..4).map(ItemId));
        let mut truncated = wal.clone();
        truncated.truncate_prefix(6);
        assert_eq!(truncated.len(), 4);
        let from_truncated = recover(&cp, &truncated);
        for i in 0..4u32 {
            assert_eq!(
                from_truncated.peek(ItemId(i)),
                full.peek(ItemId(i)),
                "item {i} diverged after prefix truncation"
            );
        }
        // Over-truncation clears without panicking.
        truncated.truncate_prefix(999);
        assert!(truncated.is_empty());
    }

    #[test]
    fn replay_is_idempotent() {
        let mut wal = WriteAheadLog::new();
        wal.append_commit(gid(0, 1), &[(ItemId(0), Value::int(1))]);
        wal.append_commit(gid(0, 2), &[(ItemId(0), Value::int(2))]);
        let cp = Checkpoint { cells: vec![(ItemId(0), Value::Initial, None)] };
        let once = recover(&cp, &wal);
        // "Replay twice": recover from the once-recovered state.
        let cp2 = checkpoint(&once, std::iter::once(ItemId(0)));
        let twice = recover(&cp2, &wal);
        assert_eq!(twice.peek(ItemId(0)).unwrap().value, once.peek(ItemId(0)).unwrap().value);
    }

    /// Arbitrary values covering every wire tag.
    fn value_strategy() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Initial),
            (i64::MIN..=i64::MAX).prop_map(Value::Int),
            prop::collection::vec(0u8..=u8::MAX, 0..24).prop_map(Value::Bytes),
        ]
    }

    /// Arbitrary record tuples for fuzzing image corruption.
    fn entries_strategy(max: usize) -> impl Strategy<Value = Vec<(u32, Value, u32, u64)>> {
        prop::collection::vec((0u32..100, value_strategy(), 0u32..5, 0u64..50), 1..max)
    }

    fn wal_from(entries: Vec<(u32, Value, u32, u64)>) -> WriteAheadLog {
        let mut wal = WriteAheadLog::new();
        for (item, value, site, seq) in entries {
            wal.append(LogRecord { item: ItemId(item), value, writer: gid(site, seq) });
        }
        wal
    }

    proptest! {
        /// Decode is total: arbitrary bytes — including headers claiming
        /// absurd record counts — produce `Ok` or a clean `Err`, never a
        /// panic or an overallocation.
        #[test]
        fn decode_never_panics_on_arbitrary_bytes(
            raw in prop::collection::vec(0u8..=u8::MAX, 0..256),
        ) {
            let _ = WriteAheadLog::decode(Bytes::from(raw));
        }

        /// A single flipped bit anywhere in a valid image (the classic
        /// torn-write corruption) never panics the decoder, and whatever
        /// still decodes re-encodes cleanly.
        #[test]
        fn decode_survives_bit_flips(
            entries in entries_strategy(20),
            flip in (0usize..usize::MAX, 0u8..8),
        ) {
            let mut raw = wal_from(entries).encode().to_vec();
            let pos = flip.0 % raw.len();
            raw[pos] ^= 1 << flip.1;
            if let Ok(decoded) = WriteAheadLog::decode(Bytes::from(raw)) {
                let _ = decoded.encode();
            }
        }

        /// Truncation at any offset of any image is always detected
        /// (generalizes the single-record unit test above).
        #[test]
        fn decode_rejects_arbitrary_truncations(
            entries in entries_strategy(12),
            cut_seed in 0usize..usize::MAX,
        ) {
            let bytes = wal_from(entries).encode();
            let cut = cut_seed % bytes.len();
            prop_assert!(WriteAheadLog::decode(bytes.slice(0..cut)).is_err());
        }

        /// encode/decode is the identity for arbitrary logs.
        #[test]
        fn roundtrip_arbitrary(entries in prop::collection::vec(
            (0u32..100, -1000i64..1000, 0u32..5, 0u64..50), 0..60)) {
            let mut wal = WriteAheadLog::new();
            for (item, v, site, seq) in entries {
                wal.append(LogRecord {
                    item: ItemId(item),
                    value: Value::int(v),
                    writer: gid(site, seq),
                });
            }
            let decoded = WriteAheadLog::decode(wal.encode()).unwrap();
            prop_assert_eq!(decoded.records(), wal.records());
        }

        /// Recovery reproduces the last committed value per item.
        #[test]
        fn recovery_matches_live_store(writes in prop::collection::vec(
            (0u32..8, 0i64..10_000), 1..50)) {
            let mut store = Store::new();
            let mut wal = WriteAheadLog::new();
            for i in 0..8u32 {
                store.create_item(ItemId(i), Value::Initial);
            }
            let cp = checkpoint(&store, (0..8).map(ItemId));
            for (seq, (item, v)) in writes.iter().enumerate() {
                let w = gid(0, seq as u64);
                let t = store.begin();
                store.write(t, ItemId(*item), Value::int(*v), w).unwrap();
                let (info, _) = store.commit(t).unwrap();
                wal.append_commit(w, &info.write_set());
            }
            let recovered = recover(&cp, &wal);
            for i in 0..8u32 {
                prop_assert_eq!(
                    recovered.peek(ItemId(i)).unwrap().value,
                    store.peek(ItemId(i)).unwrap().value
                );
            }
        }
    }
}
