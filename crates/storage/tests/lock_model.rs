//! Model-based property tests for the lock manager: drive it with random
//! operation sequences and check the 2PL safety and liveness invariants
//! after every step.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use repl_storage::{LockManager, LockMode, LockOutcome};
use repl_types::{ItemId, TxnId};

#[derive(Clone, Debug)]
enum LockOp {
    /// txn requests mode on item (skipped if the txn is blocked).
    Request { txn: u8, item: u8, exclusive: bool },
    /// txn releases everything (commit/abort).
    Release { txn: u8 },
    /// txn cancels its queued request.
    Cancel { txn: u8 },
}

fn arb_op() -> impl Strategy<Value = LockOp> {
    prop_oneof![
        3 => (0u8..8, 0u8..6, prop::bool::ANY)
            .prop_map(|(txn, item, exclusive)| LockOp::Request { txn, item, exclusive }),
        1 => (0u8..8).prop_map(|txn| LockOp::Release { txn }),
        1 => (0u8..8).prop_map(|txn| LockOp::Cancel { txn }),
    ]
}

/// A shadow model of which transaction holds which mode on which item,
/// reconstructed from grant notifications.
#[derive(Default)]
struct Shadow {
    /// (txn, item) -> exclusive?
    held: HashMap<(TxnId, ItemId), bool>,
    /// Blocked transactions and the (item, exclusive) they asked for.
    waiting: HashMap<TxnId, (ItemId, bool)>,
}

impl Shadow {
    fn invariants(&self) -> Result<(), String> {
        // No two holders of an X lock; X excludes S.
        let mut by_item: HashMap<ItemId, Vec<bool>> = HashMap::new();
        for ((_, item), &ex) in &self.held {
            by_item.entry(*item).or_default().push(ex);
        }
        for (item, modes) in by_item {
            let x_count = modes.iter().filter(|&&e| e).count();
            if x_count > 1 {
                return Err(format!("{item}: two exclusive holders"));
            }
            if x_count == 1 && modes.len() > 1 {
                return Err(format!("{item}: exclusive shared with others"));
            }
        }
        Ok(())
    }
}

fn apply_grants(shadow: &mut Shadow, granted: Vec<TxnId>) {
    for txn in granted {
        let (item, ex) = shadow.waiting.remove(&txn).expect("granted txn must have been waiting");
        let entry = shadow.held.entry((txn, item)).or_insert(false);
        *entry = *entry || ex;
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, .. ProptestConfig::default() })]

    /// Safety: the compatibility matrix is never violated, grants are
    /// consistent with the shadow model, and releasing everything
    /// eventually unblocks everyone (no lost wakeups).
    #[test]
    fn lock_manager_model(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut lm = LockManager::new();
        let mut shadow = Shadow::default();

        for op in ops {
            match op {
                LockOp::Request { txn, item, exclusive } => {
                    let txn = TxnId(txn as u64);
                    let item = ItemId(item as u32);
                    if shadow.waiting.contains_key(&txn) {
                        continue; // a blocked txn cannot issue requests
                    }
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    match lm.request(txn, item, mode) {
                        LockOutcome::Granted => {
                            let entry = shadow.held.entry((txn, item)).or_insert(false);
                            *entry = *entry || exclusive;
                            prop_assert!(lm.holds(txn, item, mode));
                        }
                        LockOutcome::Queued => {
                            shadow.waiting.insert(txn, (item, exclusive));
                            prop_assert_eq!(lm.waiting_on(txn), Some(item));
                        }
                    }
                }
                LockOp::Release { txn } => {
                    let txn = TxnId(txn as u64);
                    let granted = lm.release_all(txn);
                    shadow.waiting.remove(&txn);
                    shadow.held.retain(|(t, _), _| *t != txn);
                    apply_grants(&mut shadow, granted);
                }
                LockOp::Cancel { txn } => {
                    let txn = TxnId(txn as u64);
                    let granted = lm.cancel_wait(txn);
                    shadow.waiting.remove(&txn);
                    apply_grants(&mut shadow, granted);
                }
            }
            shadow.invariants().map_err(TestCaseError::fail)?;
            prop_assert_eq!(lm.blocked_count(), shadow.waiting.len());
        }

        // Liveness: aborting every transaction (release_all also cancels
        // a pending wait — the engine's abort path) must leave nobody
        // blocked, with every transitive wakeup reported.
        let all_txns: HashSet<TxnId> = shadow
            .held
            .keys()
            .map(|(t, _)| *t)
            .chain(shadow.waiting.keys().copied())
            .collect();
        for txn in all_txns {
            let granted = lm.release_all(txn);
            shadow.waiting.remove(&txn);
            shadow.held.retain(|(t, _), _| *t != txn);
            apply_grants(&mut shadow, granted);
        }
        // Whatever was granted during the drain belongs to transactions
        // we are also aborting; abort them too (order already covered by
        // the set iteration above — anything re-granted is re-released).
        let leftovers: Vec<TxnId> = shadow.held.keys().map(|(t, _)| *t).collect();
        for txn in leftovers {
            let granted = lm.release_all(txn);
            shadow.waiting.remove(&txn);
            shadow.held.retain(|(t, _), _| *t != txn);
            apply_grants(&mut shadow, granted);
        }
        prop_assert!(
            shadow.waiting.is_empty(),
            "lost wakeup: {:?} still blocked after aborting everyone",
            shadow.waiting
        );
        prop_assert_eq!(lm.blocked_count(), 0);
    }

    /// The waits-for detector never reports a cycle on block-free
    /// workloads and always reports one for a constructed cycle.
    #[test]
    fn deadlock_detector_soundness(perm in prop::collection::vec(0u8..20, 3..10)) {
        // Build a ring deadlock of distinct txns.
        let mut txns: Vec<u8> = perm;
        txns.sort_unstable();
        txns.dedup();
        prop_assume!(txns.len() >= 3);
        let mut lm = LockManager::new();
        for (i, &t) in txns.iter().enumerate() {
            lm.request(TxnId(t as u64), ItemId(i as u32), LockMode::Exclusive);
        }
        // No deadlock yet.
        prop_assert!(lm.find_deadlock().is_none());
        let n = txns.len();
        for (i, &t) in txns.iter().enumerate() {
            lm.request(TxnId(t as u64), ItemId(((i + 1) % n) as u32), LockMode::Exclusive);
        }
        let cycle = lm.find_deadlock().expect("ring must deadlock");
        prop_assert_eq!(cycle.len(), n);
        // The victim is on the cycle.
        let victim = lm.pick_victim(&cycle);
        prop_assert!(cycle.contains(&victim));
        // Aborting the victim clears the deadlock.
        lm.release_all(victim);
        prop_assert!(lm.find_deadlock().is_none());
    }
}
