//! Model-based tests for the transactional store: committed effects
//! equal a sequential map with rollback, under random interleavings of
//! concurrent transactions.

use std::collections::HashMap;

use proptest::prelude::*;

use repl_storage::{StorageError, Store};
use repl_types::{GlobalTxnId, ItemId, SiteId, TxnId, Value};

#[derive(Clone, Debug)]
enum StoreOp {
    Begin,
    Read { slot: u8, item: u8 },
    Write { slot: u8, item: u8, value: i64 },
    Commit { slot: u8 },
    Abort { slot: u8 },
}

fn arb_store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        1 => Just(StoreOp::Begin),
        3 => (0u8..4, 0u8..6).prop_map(|(slot, item)| StoreOp::Read { slot, item }),
        3 => (0u8..4, 0u8..6, 0i64..10_000)
            .prop_map(|(slot, item, value)| StoreOp::Write { slot, item, value }),
        1 => (0u8..4).prop_map(|slot| StoreOp::Commit { slot }),
        1 => (0u8..4).prop_map(|slot| StoreOp::Abort { slot }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Interleaved transactions with blocking: after finishing everyone,
    /// each item's committed value is the last value written by a
    /// transaction that committed (tracked via a shadow of per-txn write
    /// buffers), and aborted writes leave no trace.
    #[test]
    fn committed_state_matches_model(ops in prop::collection::vec(arb_store_op(), 1..200)) {
        let mut store = Store::new();
        for i in 0..6u32 {
            store.create_item(ItemId(i), Value::Initial);
        }
        // Up to 4 concurrent transaction slots.
        let mut slots: Vec<Option<TxnId>> = vec![None; 4];
        // Shadow committed state and per-slot uncommitted buffers.
        let mut committed: HashMap<ItemId, Value> = HashMap::new();
        let mut buffers: Vec<HashMap<ItemId, Value>> = vec![HashMap::new(); 4];
        let mut blocked: Vec<bool> = vec![false; 4];
        let mut seq = 0u64;

        for op in ops {
            match op {
                StoreOp::Begin => {
                    if let Some(free) = slots.iter().position(Option::is_none) {
                        slots[free] = Some(store.begin());
                        buffers[free].clear();
                        blocked[free] = false;
                    }
                }
                StoreOp::Read { slot, item } => {
                    let s = slot as usize % 4;
                    if blocked[s] { continue; }
                    if let Some(txn) = slots[s] {
                        match store.read(txn, ItemId(item as u32 % 6)) {
                            Ok(r) => {
                                // Read-your-writes, else committed state.
                                let item = ItemId(item as u32 % 6);
                                let expected = buffers[s]
                                    .get(&item)
                                    .or_else(|| committed.get(&item))
                                    .cloned()
                                    .unwrap_or(Value::Initial);
                                prop_assert_eq!(r.value, expected);
                            }
                            Err(StorageError::WouldBlock(_)) => blocked[s] = true,
                            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                        }
                    }
                }
                StoreOp::Write { slot, item, value } => {
                    let s = slot as usize % 4;
                    if blocked[s] { continue; }
                    if let Some(txn) = slots[s] {
                        seq += 1;
                        let gid = GlobalTxnId::new(SiteId(0), seq);
                        let item = ItemId(item as u32 % 6);
                        match store.write(txn, item, Value::int(value), gid) {
                            Ok(()) => {
                                buffers[s].insert(item, Value::int(value));
                            }
                            Err(StorageError::WouldBlock(_)) => blocked[s] = true,
                            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                        }
                    }
                }
                StoreOp::Commit { slot } => {
                    let s = slot as usize % 4;
                    // Blocked transactions cannot commit (they are inside
                    // an op); skip.
                    if blocked[s] { continue; }
                    if let Some(txn) = slots[s].take() {
                        let (_, granted) = store
                            .commit(txn)
                            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
                        for (item, v) in buffers[s].drain() {
                            committed.insert(item, v);
                        }
                        // Only transactions whose queued request was
                        // actually granted become unblocked (the granted
                        // lock is held; the dropped op is not replayed).
                        for g in granted {
                            if let Some(gs) = slots.iter().position(|t| *t == Some(g)) {
                                blocked[gs] = false;
                            }
                        }
                    }
                }
                StoreOp::Abort { slot } => {
                    let s = slot as usize % 4;
                    if let Some(txn) = slots[s].take() {
                        let granted = store
                            .abort(txn)
                            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
                        buffers[s].clear();
                        blocked[s] = false;
                        for g in granted {
                            if let Some(gs) = slots.iter().position(|t| *t == Some(g)) {
                                blocked[gs] = false;
                            }
                        }
                    }
                }
            }
        }
        // Finish everyone by abort; committed state must match the model.
        for slot in &mut slots {
            if let Some(txn) = slot.take() {
                store.abort(txn).map_err(|e| TestCaseError::fail(format!("{e}")))?;
            }
        }
        for i in 0..6u32 {
            let expected = committed.get(&ItemId(i)).cloned().unwrap_or(Value::Initial);
            prop_assert_eq!(store.peek(ItemId(i)).unwrap().value, expected, "item x{}", i);
        }
    }
}
