//! `replint` — the determinism and panic-freedom lint gate.
//!
//! Usage: `cargo run -p repl-analysis --bin replint [--json] [PATH…]`
//!
//! Recursively scans every `.rs` file under the given paths (a path may
//! also name a single file). The default set covers the crates whose
//! behaviour must be a pure function of their inputs (`crates/sim`,
//! `crates/core`, `crates/copygraph`, `crates/protocol`, plus the model
//! checker and history oracle in `crates/analysis`) with the
//! determinism rules, the storage MVCC read path (`mvcc.rs`,
//! `snapshot.rs`, `store.rs`) with the lock-free-read rule RL011, and
//! the long-running runtime crates
//! (`crates/runtime`, `crates/net`) with the panic-freedom rule — see
//! [`repl_analysis::detlint`] for the path classification. Exits 1 if
//! any error-severity finding is produced; warnings (stale
//! suppressions, RL000) are printed but do not fail the gate.

use std::fs;
use std::path::{Path, PathBuf};

use repl_analysis::detlint;
use repl_analysis::diag::Diagnostic;

fn main() {
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: replint [--json] [PATH...]");
                return;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    if paths.is_empty() {
        paths = [
            "crates/sim",
            "crates/core",
            "crates/copygraph",
            "crates/protocol",
            "crates/analysis/src/mc",
            "crates/analysis/src/history.rs",
            "crates/storage/src/mvcc.rs",
            "crates/storage/src/snapshot.rs",
            "crates/storage/src/store.rs",
            "crates/runtime",
            "crates/net",
        ]
        .iter()
        .map(PathBuf::from)
        .collect();
    }

    let mut files = Vec::new();
    for path in &paths {
        if path.is_file() {
            files.push(path.clone());
        } else {
            collect_rs_files(path, &mut files);
        }
    }
    files.sort();

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        match fs::read_to_string(file) {
            Ok(src) => {
                scanned += 1;
                diags.extend(detlint::scan_file(&file.display().to_string(), &src));
            }
            Err(e) => eprintln!("replint: skipping {}: {e}", file.display()),
        }
    }

    let errors = diags.iter().filter(|d| d.severity == repl_analysis::Severity::Error).count();
    if json {
        println!("{}", serde::to_json(&diags));
    } else {
        print!("{}", repl_analysis::render(&diags));
        eprintln!(
            "replint: scanned {scanned} files in {} path(s), {} finding(s) ({errors} error(s))",
            paths.len(),
            diags.len()
        );
    }
    if errors > 0 {
        std::process::exit(1);
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("replint: cannot read {}: {e}", dir.display());
            std::process::exit(2);
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
