//! `replint` — the determinism lint gate.
//!
//! Usage: `cargo run -p repl-analysis --bin replint [--json] [DIR…]`
//!
//! Recursively scans every `.rs` file under the given directories
//! (default: `crates/sim crates/core crates/copygraph crates/protocol`,
//! the crates whose behaviour must be a pure function of their inputs)
//! with the rules of [`repl_analysis::detlint`]. Exits 1 if any finding
//! is produced, 0 on a clean tree.

use std::fs;
use std::path::{Path, PathBuf};

use repl_analysis::detlint;
use repl_analysis::diag::Diagnostic;

fn main() {
    let mut json = false;
    let mut dirs: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: replint [--json] [DIR...]");
                return;
            }
            other => dirs.push(PathBuf::from(other)),
        }
    }
    if dirs.is_empty() {
        dirs = ["crates/sim", "crates/core", "crates/copygraph", "crates/protocol"]
            .iter()
            .map(PathBuf::from)
            .collect();
    }

    let mut files = Vec::new();
    for dir in &dirs {
        collect_rs_files(dir, &mut files);
    }
    files.sort();

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        match fs::read_to_string(file) {
            Ok(src) => {
                scanned += 1;
                diags.extend(detlint::scan_file(&file.display().to_string(), &src));
            }
            Err(e) => eprintln!("replint: skipping {}: {e}", file.display()),
        }
    }

    if json {
        println!("{}", serde::to_json(&diags));
    } else {
        print!("{}", repl_analysis::render(&diags));
        eprintln!(
            "replint: scanned {scanned} files in {} dir(s), {} finding(s)",
            dirs.len(),
            diags.len()
        );
    }
    if !diags.is_empty() {
        std::process::exit(1);
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("replint: cannot read {}: {e}", dir.display());
            std::process::exit(2);
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
