//! `replmc` — exhaustive bounded model checking of the protocol machines.
//!
//! Usage:
//!
//! ```text
//! replmc [--stats] [--json] [OPTIONS]            # run the CI gate matrix
//! replmc --protocol P --topology T [OPTIONS]     # run one scenario
//! ```
//!
//! Options: `--sites N` (default 3), `--txns N` (default 2), `--crash`
//! (allow one DAG(T) crash), `--heartbeats N` (DAG(T) budget, default 2),
//! `--aborts`/`--no-aborts` (BackEdge eager victimization), `--inject
//! skip-forward|skip-min-timestamp` (seeded mutation), `--max-states N`,
//! `--max-depth N`, `--no-sleep`, `--no-dedup`.
//!
//! Exits 0 when every scenario explores exhaustively with zero
//! diagnostics, 1 on any diagnostic, 2 on usage or truncation (a
//! truncated run proved nothing).

use repl_analysis::diag::{render, Diagnostic, Witness};
use repl_analysis::mc::{check_scenario, Config, Scenario, Topology};
use repl_protocol::{ProtocolId, SeededBug};

fn parse_protocol(s: &str) -> Option<ProtocolId> {
    match s.to_ascii_lowercase().as_str() {
        "naive" | "naivelazy" | "naive-lazy" => Some(ProtocolId::NaiveLazy),
        "dagwt" | "dag-wt" | "dag(wt)" | "wt" => Some(ProtocolId::DagWt),
        "dagt" | "dag-t" | "dag(t)" | "t" => Some(ProtocolId::DagT),
        "backedge" | "back-edge" | "be" => Some(ProtocolId::BackEdge),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: replmc [--stats] [--json] [--protocol P --topology T] [--sites N] [--txns N]\n\
         \x20             [--crash] [--heartbeats N] [--aborts|--no-aborts]\n\
         \x20             [--inject skip-forward|skip-min-timestamp]\n\
         \x20             [--max-states N] [--max-depth N] [--no-sleep] [--no-dedup]\n\
         protocols: naive, dagwt, dagt, backedge; topologies: fan, chain, diamond, cross"
    );
    std::process::exit(2);
}

struct Cli {
    protocol: Option<ProtocolId>,
    topology: Option<Topology>,
    sites: u32,
    txns: u32,
    crash: bool,
    heartbeats: Option<u32>,
    aborts: Option<bool>,
    bug: Option<SeededBug>,
    config: Config,
    stats: bool,
    json: bool,
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        protocol: None,
        topology: None,
        sites: 3,
        txns: 2,
        crash: false,
        heartbeats: None,
        aborts: None,
        bug: None,
        config: Config::default(),
        stats: false,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("replmc: {flag} needs a value");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stats" => cli.stats = true,
            "--json" => cli.json = true,
            "--crash" => cli.crash = true,
            "--aborts" => cli.aborts = Some(true),
            "--no-aborts" => cli.aborts = Some(false),
            "--no-sleep" => cli.config.sleep_sets = false,
            "--no-dedup" => cli.config.dedup = false,
            "--protocol" => {
                let v = value(&mut args, "--protocol");
                cli.protocol = Some(parse_protocol(&v).unwrap_or_else(|| {
                    eprintln!("replmc: unknown protocol {v:?}");
                    usage()
                }));
            }
            "--topology" => {
                let v = value(&mut args, "--topology");
                cli.topology = Some(Topology::parse(&v).unwrap_or_else(|| {
                    eprintln!("replmc: unknown topology {v:?}");
                    usage()
                }));
            }
            "--inject" => {
                let v = value(&mut args, "--inject");
                cli.bug = Some(match v.as_str() {
                    "skip-forward" => SeededBug::SkipForward,
                    "skip-min-timestamp" => SeededBug::SkipMinTimestamp,
                    _ => {
                        eprintln!("replmc: unknown mutation {v:?}");
                        usage()
                    }
                });
            }
            "--sites" | "--txns" | "--heartbeats" | "--max-states" | "--max-depth" => {
                let v = value(&mut args, &arg);
                let n: u64 = v.parse().unwrap_or_else(|_| {
                    eprintln!("replmc: {arg} needs a number, got {v:?}");
                    usage()
                });
                match arg.as_str() {
                    "--sites" => cli.sites = n as u32,
                    "--txns" => cli.txns = n as u32,
                    "--heartbeats" => cli.heartbeats = Some(n as u32),
                    "--max-states" => cli.config.bounds.max_states = n as usize,
                    "--max-depth" => cli.config.bounds.max_depth = n as usize,
                    _ => unreachable!(),
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("replmc: unknown argument {other:?}");
                usage();
            }
        }
    }
    cli
}

fn main() {
    let cli = parse_args();
    let scenarios: Vec<Scenario> = match (cli.protocol, cli.topology) {
        (Some(p), Some(t)) => {
            let mut s = Scenario::new(p, t, cli.sites, cli.txns);
            if cli.crash {
                s.crash_budget = 1;
            }
            if let Some(hb) = cli.heartbeats {
                s.heartbeat_budget = hb;
            }
            if let Some(a) = cli.aborts {
                s.allow_aborts = a;
            }
            s.bug = cli.bug;
            vec![s]
        }
        (None, None) => repl_analysis::mc::gate_matrix(),
        _ => {
            eprintln!("replmc: --protocol and --topology go together");
            usage();
        }
    };

    let mut all_diags: Vec<Diagnostic> = Vec::new();
    let mut truncated = false;
    for scenario in &scenarios {
        let report = match check_scenario(scenario, &cli.config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("replmc: {}: {e}", scenario.label());
                std::process::exit(2);
            }
        };
        let s = &report.stats;
        let verdict = if s.truncated {
            "TRUNCATED"
        } else if report.findings.is_empty() {
            "ok"
        } else {
            "FAIL"
        };
        if cli.stats || !cli.json {
            eprintln!(
                "replmc: {:<24} {:>9} states {:>10} transitions {:>9} sleep-skips \
                 {:>9} dedup-hits {:>6} quiescent depth {:<4} {}",
                scenario.label(),
                s.states,
                s.transitions,
                s.sleep_skips,
                s.dedup_hits,
                s.quiescent_states,
                s.max_depth_seen,
                verdict
            );
        }
        truncated |= s.truncated;
        if !s.truncated && s.quiescent_states == 0 {
            eprintln!(
                "replmc: {}: exhaustive exploration reached no quiescent state — \
                 budgets too tight to mean anything",
                scenario.label()
            );
            truncated = true;
        }
        for f in report.findings {
            if !cli.json {
                print!("{}", render(std::slice::from_ref(&f.diagnostic)));
                if let Witness::McTrace { steps } = &f.diagnostic.witness {
                    println!("    replay ({} steps): {}", steps.len(), steps.join(", "));
                }
            }
            all_diags.push(f.diagnostic);
        }
    }
    if cli.json {
        println!("{}", serde::to_json(&all_diags));
    }
    if !all_diags.is_empty() {
        std::process::exit(1);
    }
    if truncated {
        std::process::exit(2);
    }
}
