//! Trace replay and greedy counterexample shrinking.
//!
//! A raw DFS counterexample contains every scheduler step on the path
//! to the violation, most of which are irrelevant noise (commits at
//! bystander sites, deliveries that never mattered). [`shrink`] reduces
//! it to a *1-minimal* trace: removing any single step stops the
//! violation from reproducing.
//!
//! Shrinking leans on a forgiving [`replay`]: a candidate trace may
//! contain steps that are disabled at replay time (removing an earlier
//! step can disable a later one); replay skips those and returns the
//! steps it actually executed. Candidates are accepted only when the
//! *executed* trace still reproduces the target diagnostic code and is
//! strictly shorter, so the loop terminates.

use std::collections::BTreeSet;

use super::scenario::Scenario;
use super::world::{Action, World};
use crate::diag::Diagnostic;

/// The outcome of replaying a schedule from a scenario's initial state.
#[derive(Debug)]
pub struct Replay {
    /// The steps that were actually executed (disabled steps skipped).
    pub executed: Vec<Action>,
    /// Diagnostic codes the replay reproduced.
    pub codes: BTreeSet<&'static str>,
    /// The diagnostics themselves, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

/// Replay `trace` from `scenario`'s initial state, skipping steps that
/// are not enabled when their turn comes, stopping at the first
/// violation. State oracles run after every step (and on the initial
/// state); if the full trace executes cleanly and dead-ends short of
/// quiescence, the stall oracle runs too.
pub fn replay(scenario: &Scenario, trace: &[Action]) -> Result<Replay, String> {
    let mut world = World::new(scenario)?;
    let mut executed = Vec::new();
    let mut diagnostics = Vec::new();
    let mut checked: BTreeSet<u128> = BTreeSet::new();

    if checked.insert(world.fingerprint()) {
        diagnostics.extend(world.check_state());
    }
    if diagnostics.is_empty() {
        for &a in trace {
            if !world.is_enabled(a) {
                continue;
            }
            world.apply(a, &mut diagnostics);
            executed.push(a);
            if !diagnostics.is_empty() || world.poisoned() {
                break;
            }
            if checked.insert(world.fingerprint()) {
                diagnostics.extend(world.check_state());
            }
            if !diagnostics.is_empty() {
                break;
            }
        }
    }
    if diagnostics.is_empty() && world.enabled_actions().is_empty() {
        diagnostics.extend(world.check_stall());
    }
    let codes = diagnostics.iter().map(|d| d.code).collect();
    Ok(Replay { executed, codes, diagnostics })
}

/// Greedily shrink `trace` to a 1-minimal schedule that still
/// reproduces diagnostic `code`. Falls back to the input trace if it
/// does not replay to `code` in the first place (it should — the
/// explorer produced it).
pub fn shrink(scenario: &Scenario, trace: &[Action], code: &'static str) -> Vec<Action> {
    // Normalize to the executed prefix first: the explorer's trace may
    // extend past the step that made the violation inevitable.
    let mut current = match replay(scenario, trace) {
        Ok(r) if r.codes.contains(code) => r.executed,
        _ => return trace.to_vec(),
    };
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            match replay(scenario, &candidate) {
                Ok(r) if r.codes.contains(code) && r.executed.len() < current.len() => {
                    current = r.executed;
                    improved = true;
                    // re-test index i (a new step now sits there)
                }
                _ => i += 1,
            }
        }
        if !improved {
            return current;
        }
    }
}
