//! Bounded model-checking scenarios: topology, workload, budgets.
//!
//! A [`Scenario`] fixes everything the explorer needs to enumerate a
//! finite state space: the placement (one of four canonical shapes at
//! 2–4 sites), a small write-only workload (2–3 transactions, each also
//! *observed* reading its origin's local copies at commit time), and
//! the budgets that bound otherwise-infinite behaviours (DAG(T)
//! heartbeats, the optional single crash, BackEdge eager aborts).
//!
//! The shapes are chosen so each protocol's load-bearing machinery is
//! actually on the critical path:
//!
//! * **fan** — every item primary at `s0`, replicated everywhere: the
//!   per-link FIFO discipline is the whole story (NaiveLazy's home turf).
//! * **chain** — item *k* primary at `s_k`, replicated downstream: the
//!   last site has *two* DAG(T) parents, so the §3.2.3 minimum-timestamp
//!   rule (and its dummies) decides the apply order there, and DAG(WT)
//!   routes through an interior site.
//! * **diamond** — `s0` fans out to `s1`/`s2` which both feed `s3`:
//!   two merge queues at the sink with independent middle paths.
//! * **cross** — `a@s0 → {s1,s2}`, `b@s1 → {s0,s2}`: the copy graph is
//!   cyclic, so DAG protocols reject it and BackEdge must run its eager
//!   special phase (§4.1). NaiveLazy on this shape is Example 1.1 — the
//!   checker *rediscovers* the paper's anomaly (a positive control, not
//!   a gate scenario).

use repl_copygraph::DataPlacement;
use repl_protocol::{ProtocolId, SeededBug};
use repl_types::{GlobalTxnId, ItemId, SiteId, Value};

/// One planned primary transaction of the bounded workload.
#[derive(Clone, Debug)]
pub struct PlannedTxn {
    /// The transaction's global id (origin + per-origin sequence).
    pub gid: GlobalTxnId,
    /// Its write set (items primary at the origin).
    pub writes: Vec<(ItemId, Value)>,
    /// Items the transaction reads at its origin (every locally held
    /// copy it does not write). The machine never sees these — reads
    /// exist for the serializability oracle, which records the version
    /// tags the origin's store holds at commit time.
    pub reads: Vec<ItemId>,
}

/// A canonical placement shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// All items primary at `s0`, replicated at every other site.
    Fan,
    /// Item `k` primary at `s_k`, replicated at all later sites.
    Chain,
    /// `s0 → {s1,s2,s3}`, `s1 → {s3}`, `s2 → {s3}` (4 sites exactly).
    Diamond,
    /// `a@s0 → {s1,s2}`, `b@s1 → {s0,s2}` (3 sites exactly; cyclic).
    Cross,
}

impl Topology {
    /// The topology's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Topology::Fan => "fan",
            Topology::Chain => "chain",
            Topology::Diamond => "diamond",
            Topology::Cross => "cross",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Topology> {
        match s {
            "fan" => Some(Topology::Fan),
            "chain" => Some(Topology::Chain),
            "diamond" => Some(Topology::Diamond),
            "cross" => Some(Topology::Cross),
            _ => None,
        }
    }

    /// Build the placement at `sites` sites, or explain why the shape
    /// does not exist at that size.
    pub fn build_placement(self, sites: u32) -> Result<DataPlacement, String> {
        match self {
            Topology::Fan => {
                if !(2..=4).contains(&sites) {
                    return Err(format!("fan topology needs 2-4 sites, got {sites}"));
                }
                let mut p = DataPlacement::new(sites);
                let replicas: Vec<SiteId> = (1..sites).map(SiteId).collect();
                p.add_item(SiteId(0), &replicas);
                p.add_item(SiteId(0), &replicas);
                Ok(p)
            }
            Topology::Chain => {
                if !(2..=4).contains(&sites) {
                    return Err(format!("chain topology needs 2-4 sites, got {sites}"));
                }
                let mut p = DataPlacement::new(sites);
                for k in 0..sites - 1 {
                    let replicas: Vec<SiteId> = (k + 1..sites).map(SiteId).collect();
                    p.add_item(SiteId(k), &replicas);
                }
                Ok(p)
            }
            Topology::Diamond => {
                if sites != 4 {
                    return Err(format!("diamond topology needs exactly 4 sites, got {sites}"));
                }
                let mut p = DataPlacement::new(4);
                p.add_item(SiteId(0), &[SiteId(1), SiteId(2), SiteId(3)]);
                p.add_item(SiteId(1), &[SiteId(3)]);
                p.add_item(SiteId(2), &[SiteId(3)]);
                Ok(p)
            }
            Topology::Cross => {
                if sites != 3 {
                    return Err(format!("cross topology needs exactly 3 sites, got {sites}"));
                }
                let mut p = DataPlacement::new(3);
                p.add_item(SiteId(0), &[SiteId(1), SiteId(2)]);
                p.add_item(SiteId(1), &[SiteId(0), SiteId(2)]);
                Ok(p)
            }
        }
    }
}

/// A fully specified bounded model-checking run.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The protocol under test.
    pub protocol: ProtocolId,
    /// The placement shape.
    pub topology: Topology,
    /// Number of sites.
    pub sites: u32,
    /// Total number of primary transactions in the workload.
    pub txns: u32,
    /// DAG(T): how many heartbeats each site may fire. Zero for other
    /// protocols. Bounding heartbeats keeps the state space finite; a
    /// branch that exhausts its budget before quiescing is starved by
    /// the bound, not by the protocol, and is not flagged.
    pub heartbeat_budget: u32,
    /// DAG(T): how many site crashes the scheduler may inject (0 or 1).
    pub crash_budget: u32,
    /// BackEdge: whether the scheduler may victimize eager phases.
    /// Defaults on for BackEdge — the eager phase's held 2PL locks make
    /// some interleavings deadlock (Example 4.1), and timeout abort is
    /// the protocol's own resolution, so disabling it strands branches.
    pub allow_aborts: bool,
    /// A deliberately seeded protocol bug (mutation testing only).
    pub bug: Option<SeededBug>,
}

impl Scenario {
    /// A scenario with default budgets for the protocol.
    pub fn new(protocol: ProtocolId, topology: Topology, sites: u32, txns: u32) -> Scenario {
        Scenario {
            protocol,
            topology,
            sites,
            txns,
            heartbeat_budget: if protocol == ProtocolId::DagT { 2 } else { 0 },
            crash_budget: 0,
            allow_aborts: protocol == ProtocolId::BackEdge,
            bug: None,
        }
    }

    /// A short display name, e.g. `DAG(T)/chain3x2`.
    pub fn label(&self) -> String {
        let mut s =
            format!("{}/{}{}x{}", self.protocol, self.topology.name(), self.sites, self.txns);
        if self.crash_budget > 0 {
            s.push_str("+crash");
        }
        if self.allow_aborts {
            s.push_str("+aborts");
        }
        if let Some(bug) = self.bug {
            s.push_str(&format!("+{bug:?}"));
        }
        s
    }

    /// Expand the workload into concrete per-site commit plans: `txns`
    /// transactions round-robined over the sites that own primaries, in
    /// site order, each writing one of its origin's primary items (a
    /// unique value) and reading every other locally held copy.
    pub fn plan(&self, placement: &DataPlacement) -> Vec<Vec<PlannedTxn>> {
        let n = placement.num_sites() as usize;
        let origins: Vec<SiteId> =
            placement.sites().filter(|&s| !placement.primaries_at(s).is_empty()).collect();
        let mut txns: Vec<Vec<PlannedTxn>> = vec![Vec::new(); n];
        let mut seq = vec![1u64; n];
        for k in 0..self.txns as usize {
            let origin = origins[k % origins.len()];
            let primaries = placement.primaries_at(origin);
            let item = primaries[(k / origins.len()) % primaries.len()];
            let gid = GlobalTxnId::new(origin, seq[origin.index()]);
            seq[origin.index()] += 1;
            let writes = vec![(item, Value::int(1000 * (k as i64 + 1)))];
            let reads: Vec<ItemId> =
                placement.items_at(origin).iter().copied().filter(|&i| i != item).collect();
            txns[origin.index()].push(PlannedTxn { gid, writes, reads });
        }
        txns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_last_site_has_two_parents() {
        let p = Topology::Chain.build_placement(3).unwrap();
        let g = repl_copygraph::CopyGraph::from_placement(&p);
        assert_eq!(g.parent_count(SiteId(2)), 2);
        assert!(g.is_dag());
    }

    #[test]
    fn cross_is_cyclic() {
        let p = Topology::Cross.build_placement(3).unwrap();
        let g = repl_copygraph::CopyGraph::from_placement(&p);
        assert!(!g.is_dag());
    }

    #[test]
    fn diamond_requires_four_sites() {
        assert!(Topology::Diamond.build_placement(3).is_err());
        assert!(Topology::Diamond.build_placement(4).is_ok());
    }

    #[test]
    fn plan_round_robins_origins_with_unique_gids() {
        let p = Topology::Chain.build_placement(3).unwrap();
        let s = Scenario::new(ProtocolId::DagWt, Topology::Chain, 3, 3);
        let plan = s.plan(&p);
        let total: usize = plan.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
        // Two primary-owning sites: s0 gets txns 0 and 2, s1 gets txn 1.
        assert_eq!(plan[0].len(), 2);
        assert_eq!(plan[1].len(), 1);
        assert!(plan[2].is_empty());
        // The observed read set at s1 covers its replica of item a.
        assert_eq!(plan[1][0].reads, vec![ItemId(0)]);
    }
}
