//! The explored global state: machines, links, stores, and oracles.
//!
//! A [`World`] is one node of the model checker's state graph: the
//! fleet of [`SiteMachine`]s plus everything the drivers around them
//! would hold — per-directed-link FIFO queues, per-site committed
//! stores (with writer tags), the single applier slot, pending direct
//! prepares, workload cursors, and fault bookkeeping. The explorer
//! clones a `World`, applies one [`Action`], and recurses.
//!
//! Lock modelling: local transactions are *instantaneous* (they read
//! their origin's current versions and install their writes atomically
//! at commit), except where the paper's correctness argument leans on
//! locks being *held*:
//!
//! * A prepared BackEdge special holds write locks until its decision
//!   (§4.1), so a local commit whose footprint intersects a prepared
//!   special's write set is disabled until the decision arrives.
//! * A BackEdge transaction in its eager phase holds its own read and
//!   write locks at the origin from commit intent to commit, so
//!   conflicting applies and prepares at the origin are disabled — this
//!   is exactly the mechanism that converts Example 4.1's write-skew
//!   interleavings into deadlocks (resolved by [`Action::AbortEager`])
//!   instead of anomalies.
//!
//! Every other interleaving a blocked lock-wait could produce is
//! already explored as the schedule where the blocked step simply runs
//! later, so the instantaneous model reaches the same histories.
//!
//! Oracle codes:
//!
//! * **MC001** — replicas diverge from their primary at quiescence, or
//!   the fleet dead-ends before quiescence (non-DAG(T); a DAG(T) branch
//!   that spent its heartbeat budget is starved by the bound, not the
//!   protocol).
//! * **MC002** — the committed history plus per-site observer snapshots
//!   is not one-copy serializable (checked at every state).
//! * **MC003** — ordering discipline: a send off the protocol's legal
//!   links, or a site applying one origin's subtransactions out of that
//!   origin's commit order.
//! * **MC004** — a site's DAG(T) epoch decreases.
//! * **MC005** — an input reaches (or a command leaves) a crashed site.
//! * **MC006** — a machine returns a [`ProtocolError`] on a legal input
//!   sequence, or violates an internal contract (e.g. double-booking
//!   the applier slot).
//!
//! [`ProtocolError`]: repl_protocol::ProtocolError

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use repl_copygraph::{BackEdgeSet, CopyGraph, DataPlacement, PropagationTree};
use repl_protocol::digest::{digest_gid, digest_payload, digest_site, digest_value, digest_writes};
use repl_protocol::{Command, Input, Payload, ProtocolId, SiteMachine, StableDigest};
use repl_types::{GlobalTxnId, ItemId, SiteId, Value};

use super::scenario::{PlannedTxn, Scenario};
use crate::diag::{Diagnostic, Witness};
use crate::history::History;

/// Sequence number of per-site observer transactions in the MC002
/// history (dummies already claim `u64::MAX`).
pub const OBSERVER_SEQ: u64 = u64::MAX - 1;

/// Sequence number of DAG(T) dummy subtransactions.
const DUMMY_SEQ: u64 = u64::MAX;

/// A transaction's write set.
pub type WriteSet = Vec<(ItemId, Value)>;

/// One schedulable step of the model checker's scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Action {
    /// Issue the site's next planned commit (intent + instant commit,
    /// or the start of a BackEdge eager phase).
    Commit(SiteId),
    /// Pop one payload off the `(from, to)` FIFO link.
    Deliver(SiteId, SiteId),
    /// Complete the applier-slot work (apply or queued prepare).
    Complete(SiteId),
    /// Complete the site's oldest direct (non-queued) prepare.
    Prep(SiteId),
    /// DAG(T): fire one budgeted heartbeat at this site.
    Heartbeat(SiteId),
    /// DAG(T): crash this site (consumes the crash budget).
    Crash(SiteId),
    /// Recover a crashed site (sources bump their epoch, §3.3).
    Restart(SiteId),
    /// BackEdge: victimize this eager phase (deadlock/timeout).
    AbortEager(GlobalTxnId),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Commit(s) => write!(f, "commit({s})"),
            Action::Deliver(a, b) => write!(f, "deliver({a}->{b})"),
            Action::Complete(s) => write!(f, "complete({s})"),
            Action::Prep(s) => write!(f, "prep({s})"),
            Action::Heartbeat(s) => write!(f, "heartbeat({s})"),
            Action::Crash(s) => write!(f, "crash({s})"),
            Action::Restart(s) => write!(f, "restart({s})"),
            Action::AbortEager(g) => write!(f, "abort-eager({g})"),
        }
    }
}

/// The immutable part of a run, shared by every cloned [`World`].
pub(crate) struct Fleet {
    pub protocol: ProtocolId,
    pub placement: Arc<DataPlacement>,
    pub graph: Arc<CopyGraph>,
    pub tree: Option<Arc<PropagationTree>>,
    /// Planned commits per site, in issue order.
    pub plan: Vec<Vec<PlannedTxn>>,
    /// Plan entries by gid.
    pub txn_info: BTreeMap<GlobalTxnId, PlannedTxn>,
    pub heartbeat_budget: u32,
    pub crash_budget: u32,
    pub allow_aborts: bool,
    /// Copy-graph sources (epoch owners, §3.3).
    pub sources: Vec<SiteId>,
}

/// Work occupying a site's single applier slot.
#[derive(Clone)]
struct PendingApply {
    gid: GlobalTxnId,
    writes: WriteSet,
    prepare: bool,
}

/// One explored global state.
#[derive(Clone)]
pub struct World {
    fleet: Arc<Fleet>,
    machines: Vec<SiteMachine>,
    /// Committed copy state per site: item → (value, writer tag).
    stores: Vec<BTreeMap<ItemId, (Value, Option<GlobalTxnId>)>>,
    /// Per-directed-link FIFO queues.
    links: BTreeMap<(SiteId, SiteId), VecDeque<Payload>>,
    applier: Vec<Option<PendingApply>>,
    /// Direct (non-queued) BackEdge prepares awaiting completion.
    direct_preps: Vec<VecDeque<(GlobalTxnId, WriteSet)>>,
    /// Per-site issue cursor into the plan.
    next_txn: Vec<usize>,
    committed: BTreeSet<GlobalTxnId>,
    /// Per-origin commit order (the per-item version order, since every
    /// writer of an item is a transaction of its primary site).
    commit_log: Vec<Vec<GlobalTxnId>>,
    /// gid → 1-based position in its origin's commit log.
    commit_index: BTreeMap<GlobalTxnId, u64>,
    /// Versions each transaction read at its origin, recorded at commit.
    txn_reads: BTreeMap<GlobalTxnId, Vec<(ItemId, Option<GlobalTxnId>)>>,
    /// BackEdge commits whose eager phase is in flight.
    eager_waiting: BTreeSet<GlobalTxnId>,
    aborted: BTreeSet<GlobalTxnId>,
    crashed: Vec<bool>,
    hb_budget: Vec<u32>,
    crash_budget: u32,
    /// Write-lock footprints of prepared specials, per site (held from
    /// `Prepared` until the decision).
    special_locks: Vec<BTreeMap<GlobalTxnId, Vec<ItemId>>>,
    /// MC003: per site, origin → last applied commit index.
    last_applied: Vec<BTreeMap<SiteId, u64>>,
    /// MC004: per-site epoch high-water mark.
    epoch_floor: Vec<u64>,
    /// A machine returned an error or broke a contract; stop exploring.
    poisoned: bool,
}

impl World {
    /// Build the initial state of a scenario.
    pub fn new(scenario: &Scenario) -> Result<World, String> {
        let placement = scenario.topology.build_placement(scenario.sites)?;
        let graph = CopyGraph::from_placement(&placement);
        if matches!(scenario.protocol, ProtocolId::DagWt | ProtocolId::DagT) && !graph.is_dag() {
            return Err(format!(
                "{} requires a DAG copy graph; topology {} is cyclic",
                scenario.protocol,
                scenario.topology.name()
            ));
        }
        let tree = match scenario.protocol {
            ProtocolId::DagWt => Some(
                PropagationTree::chain(&graph)
                    .map_err(|_| "chain tree on a non-DAG".to_string())?,
            ),
            ProtocolId::BackEdge => {
                let b = BackEdgeSet::by_site_order(&graph);
                let constraints = b.augmented_constraints(&graph);
                let mut cg = CopyGraph::empty(placement.num_sites());
                for &(u, v) in &constraints {
                    cg.add_edge(u, v, 1);
                }
                Some(
                    PropagationTree::chain(&cg)
                        .map_err(|_| "augmented constraints are cyclic".to_string())?,
                )
            }
            ProtocolId::NaiveLazy | ProtocolId::DagT => None,
        };
        let plan = scenario.plan(&placement);
        let mut txn_info = BTreeMap::new();
        for t in plan.iter().flatten() {
            txn_info.insert(t.gid, t.clone());
        }
        let sources = graph.sources();
        let placement = Arc::new(placement);
        let graph = Arc::new(graph);
        let tree = tree.map(Arc::new);
        let n = placement.num_sites() as usize;
        let mut machines = Vec::with_capacity(n);
        for s in 0..n {
            let mut m = SiteMachine::new(
                SiteId(s as u32),
                scenario.protocol,
                placement.clone(),
                graph.clone(),
                tree.clone(),
            )
            .map_err(|e| format!("machine build failed: {e}"))?;
            if let Some(bug) = scenario.bug {
                m.inject_bug(bug);
            }
            machines.push(m);
        }
        let fleet = Arc::new(Fleet {
            protocol: scenario.protocol,
            placement,
            graph,
            tree,
            plan,
            txn_info,
            heartbeat_budget: scenario.heartbeat_budget,
            crash_budget: scenario.crash_budget,
            allow_aborts: scenario.allow_aborts,
            sources,
        });
        Ok(World {
            machines,
            stores: vec![BTreeMap::new(); n],
            links: BTreeMap::new(),
            applier: (0..n).map(|_| None).collect(),
            direct_preps: vec![VecDeque::new(); n],
            next_txn: vec![0; n],
            committed: BTreeSet::new(),
            commit_log: vec![Vec::new(); n],
            commit_index: BTreeMap::new(),
            txn_reads: BTreeMap::new(),
            eager_waiting: BTreeSet::new(),
            aborted: BTreeSet::new(),
            crashed: vec![false; n],
            hb_budget: vec![fleet.heartbeat_budget; n],
            crash_budget: fleet.crash_budget,
            special_locks: vec![BTreeMap::new(); n],
            last_applied: vec![BTreeMap::new(); n],
            epoch_floor: vec![0; n],
            poisoned: false,
            fleet,
        })
    }

    fn num_sites(&self) -> usize {
        self.machines.len()
    }

    /// The protocol under test.
    pub fn protocol(&self) -> ProtocolId {
        self.fleet.protocol
    }

    /// True once a machine errored; the branch stops here.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Committed transaction count (gate statistics).
    pub fn committed_count(&self) -> usize {
        self.committed.len()
    }

    // ------------------------------------------------------------------
    // Lock footprints.
    // ------------------------------------------------------------------

    /// A planned transaction's lock footprint (reads ∪ writes).
    fn footprint(&self, t: &PlannedTxn) -> Vec<ItemId> {
        let mut items: Vec<ItemId> = t.writes.iter().map(|(i, _)| *i).collect();
        items.extend(&t.reads);
        items
    }

    /// Items locked at `site` by prepared specials and resident eager
    /// phases, excluding special `skip` (a prepare never conflicts with
    /// its own locks).
    fn locked_items(&self, site: SiteId, skip: Option<GlobalTxnId>) -> BTreeSet<ItemId> {
        let mut locked = BTreeSet::new();
        for (gid, items) in &self.special_locks[site.index()] {
            if Some(*gid) != skip {
                locked.extend(items.iter().copied());
            }
        }
        for gid in &self.eager_waiting {
            if gid.origin == site {
                if let Some(t) = self.fleet.txn_info.get(gid) {
                    locked.extend(self.footprint(t));
                }
            }
        }
        locked
    }

    fn conflicts(locked: &BTreeSet<ItemId>, items: &[ItemId]) -> bool {
        items.iter().any(|i| locked.contains(i))
    }

    // ------------------------------------------------------------------
    // Enabled actions.
    // ------------------------------------------------------------------

    /// Every action the scheduler may take in this state, in a fixed
    /// deterministic order.
    pub fn enabled_actions(&self) -> Vec<Action> {
        if self.poisoned {
            return Vec::new();
        }
        let mut acts = Vec::new();
        for s in 0..self.num_sites() {
            let site = SiteId(s as u32);
            if self.crashed[s] {
                acts.push(Action::Restart(site));
                continue;
            }
            if self.can_commit(site) {
                acts.push(Action::Commit(site));
            }
            if let Some(p) = &self.applier[s] {
                let skip = if p.prepare { Some(p.gid) } else { None };
                let locked = self.locked_items(site, skip);
                let items: Vec<ItemId> = p.writes.iter().map(|(i, _)| *i).collect();
                if !Self::conflicts(&locked, &items) {
                    acts.push(Action::Complete(site));
                }
            }
            if let Some((gid, writes)) = self.direct_preps[s].front() {
                let locked = self.locked_items(site, Some(*gid));
                let items: Vec<ItemId> = writes.iter().map(|(i, _)| *i).collect();
                if !Self::conflicts(&locked, &items) {
                    acts.push(Action::Prep(site));
                }
            }
            if self.fleet.protocol == ProtocolId::DagT {
                if self.hb_budget[s] > 0 && !self.idle_children(site).is_empty() {
                    acts.push(Action::Heartbeat(site));
                }
                if self.crash_budget > 0 {
                    acts.push(Action::Crash(site));
                }
            }
        }
        for ((from, to), q) in &self.links {
            if !q.is_empty() && !self.crashed[to.index()] {
                acts.push(Action::Deliver(*from, *to));
            }
        }
        if self.fleet.allow_aborts {
            for &gid in &self.eager_waiting {
                if !self.crashed[gid.origin.index()] {
                    acts.push(Action::AbortEager(gid));
                }
            }
        }
        acts
    }

    /// True if `a` is enabled right now (replay normalization).
    pub fn is_enabled(&self, a: Action) -> bool {
        self.enabled_actions().contains(&a)
    }

    /// Another planned commit may be issued at `site`: plan remains, at
    /// most one other eager phase of this origin is in flight (the
    /// runtime's two worker threads), and the transaction's 2PL
    /// footprint does not collide with locks held at the origin.
    fn can_commit(&self, site: SiteId) -> bool {
        let idx = self.next_txn[site.index()];
        if idx >= self.fleet.plan[site.index()].len() {
            return false;
        }
        if self.eager_waiting.iter().filter(|g| g.origin == site).count() >= 2 {
            return false;
        }
        let t = &self.fleet.plan[site.index()][idx];
        let locked = self.locked_items(site, None);
        !Self::conflicts(&locked, &self.footprint(t))
    }

    /// DAG(T) children of `site` with an empty link *and* an empty
    /// queue-from-`site` — the ones a heartbeat dummy would help.
    fn idle_children(&self, site: SiteId) -> Vec<SiteId> {
        self.fleet
            .graph
            .children(site)
            .filter(|&c| {
                self.links.get(&(site, c)).is_none_or(VecDeque::is_empty)
                    && self.machines[c.index()]
                        .queue_summary()
                        .iter()
                        .all(|&(from, len)| from != site || len == 0)
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Applying actions.
    // ------------------------------------------------------------------

    /// Execute one action, appending any step-oracle violations. The
    /// caller guarantees `action` was enabled.
    pub fn apply(&mut self, action: Action, diags: &mut Vec<Diagnostic>) {
        match action {
            Action::Commit(site) => {
                let idx = self.next_txn[site.index()];
                self.next_txn[site.index()] += 1;
                let t = self.fleet.plan[site.index()][idx].clone();
                self.feed(site, Input::CommitIntent { gid: t.gid, writes: t.writes }, diags);
                if !self.committed.contains(&t.gid) && !self.aborted.contains(&t.gid) {
                    self.eager_waiting.insert(t.gid);
                }
            }
            Action::Deliver(from, to) => {
                if let Some(payload) = self.links.get_mut(&(from, to)).and_then(VecDeque::pop_front)
                {
                    self.feed(to, Input::Deliver { from, payload }, diags);
                }
            }
            Action::Complete(site) => {
                let Some(p) = self.applier[site.index()].take() else { return };
                if p.prepare {
                    let items = p.writes.iter().map(|(i, _)| *i).collect();
                    self.special_locks[site.index()].insert(p.gid, items);
                    self.feed(site, Input::Prepared { gid: p.gid }, diags);
                } else {
                    self.note_apply(site, p.gid, diags);
                    for (item, value) in p.writes {
                        self.stores[site.index()].insert(item, (value, Some(p.gid)));
                    }
                    self.feed(site, Input::Applied { gid: p.gid }, diags);
                }
            }
            Action::Prep(site) => {
                let Some((gid, writes)) = self.direct_preps[site.index()].pop_front() else {
                    return;
                };
                let items = writes.iter().map(|(i, _)| *i).collect();
                self.special_locks[site.index()].insert(gid, items);
                self.feed(site, Input::Prepared { gid }, diags);
            }
            Action::Heartbeat(site) => {
                self.hb_budget[site.index()] -= 1;
                let idle_children = self.idle_children(site);
                self.feed(site, Input::HeartbeatTick { idle_children }, diags);
            }
            Action::Crash(site) => {
                self.crash_budget -= 1;
                self.feed(site, Input::Crashed, diags);
                self.crashed[site.index()] = true;
                // The store rolled the in-flight apply back (the machine
                // re-queued it); volatile prepare state is gone.
                self.applier[site.index()] = None;
                self.direct_preps[site.index()].clear();
                self.special_locks[site.index()].clear();
            }
            Action::Restart(site) => {
                self.crashed[site.index()] = false;
                // §3.3: recovery bumps the epoch at the copy-graph
                // sources so post-crash timestamps dominate stragglers.
                for &src in &self.fleet.sources.clone() {
                    if !self.crashed[src.index()] {
                        self.feed(src, Input::EpochTick, diags);
                    }
                }
            }
            Action::AbortEager(gid) => {
                self.eager_waiting.remove(&gid);
                self.aborted.insert(gid);
                self.feed(gid.origin, Input::AbortEager { gid }, diags);
            }
        }
        self.check_epochs(diags);
    }

    /// Feed one input to a machine and carry out its commands.
    fn feed(&mut self, site: SiteId, input: Input, diags: &mut Vec<Diagnostic>) {
        if self.crashed[site.index()] {
            self.poisoned = true;
            diags.push(Diagnostic::error(
                "MC005",
                format!("input {input:?} routed to crashed site {site}"),
                Witness::None,
            ));
            return;
        }
        match self.machines[site.index()].on_input(input) {
            Ok(cmds) => self.run_commands(site, cmds, diags),
            Err(e) => {
                self.poisoned = true;
                diags.push(Diagnostic::error(
                    "MC006",
                    format!("protocol error at {site} on a legal input sequence: {e}"),
                    Witness::None,
                ));
            }
        }
    }

    fn run_commands(&mut self, site: SiteId, cmds: Vec<Command>, diags: &mut Vec<Diagnostic>) {
        for cmd in cmds {
            match cmd {
                Command::Send { to, payload } => {
                    if let Some(d) = self.check_link(site, to, &payload) {
                        self.poisoned = true;
                        diags.push(d);
                    } else {
                        self.links.entry((site, to)).or_default().push_back(payload);
                    }
                }
                // A batch is definitionally the same payload sequence as
                // the serial sends; the checker runs the default serial
                // window, so seeing one at all is a machine bug — let
                // the per-payload link checks judge it either way.
                Command::SendBatch { to, payloads } => {
                    for payload in payloads {
                        if let Some(d) = self.check_link(site, to, &payload) {
                            self.poisoned = true;
                            diags.push(d);
                        } else {
                            self.links.entry((site, to)).or_default().push_back(payload);
                        }
                    }
                }
                Command::CommitLocal { gid } => self.commit_local(site, gid, diags),
                Command::Apply { gid, writes } => {
                    if self.applier[site.index()].is_some() {
                        self.poisoned = true;
                        diags.push(Diagnostic::error(
                            "MC006",
                            format!("{site} issued Apply({gid}) while its applier slot is busy"),
                            Witness::None,
                        ));
                        continue;
                    }
                    self.applier[site.index()] = Some(PendingApply { gid, writes, prepare: false });
                }
                // The checker never widens the apply window, so a
                // multi-admission is a protocol bug: unrolling it trips
                // the single-slot oracle above on the second entry.
                Command::ApplyMany { subs } => {
                    for (gid, writes) in subs {
                        if self.applier[site.index()].is_some() {
                            self.poisoned = true;
                            diags.push(Diagnostic::error(
                                "MC006",
                                format!(
                                    "{site} issued ApplyMany({gid}) while its applier slot is busy"
                                ),
                                Witness::None,
                            ));
                            continue;
                        }
                        self.applier[site.index()] =
                            Some(PendingApply { gid, writes, prepare: false });
                    }
                }
                Command::Prepare { gid, writes, queued, .. } => {
                    if queued {
                        if self.applier[site.index()].is_some() {
                            self.poisoned = true;
                            diags.push(Diagnostic::error(
                                "MC006",
                                format!(
                                    "{site} issued queued Prepare({gid}) while its applier slot is busy"
                                ),
                                Witness::None,
                            ));
                            continue;
                        }
                        self.applier[site.index()] =
                            Some(PendingApply { gid, writes, prepare: true });
                    } else {
                        self.direct_preps[site.index()].push_back((gid, writes));
                    }
                }
                Command::CommitPrepared { gid, writes } => {
                    self.note_apply(site, gid, diags);
                    self.special_locks[site.index()].remove(&gid);
                    for (item, value) in writes {
                        self.stores[site.index()].insert(item, (value, Some(gid)));
                    }
                }
                Command::AbortPrepared { gid } => {
                    self.special_locks[site.index()].remove(&gid);
                    if self.applier[site.index()].as_ref().is_some_and(|p| p.gid == gid) {
                        self.applier[site.index()] = None;
                    } else {
                        self.direct_preps[site.index()].retain(|(g, _)| *g != gid);
                    }
                }
                Command::ArmEagerTimeout { .. } => {} // the scheduler is the clock
            }
        }
    }

    /// Execute `CommitLocal`: record the versions the transaction read
    /// at its origin, install its writes, append to the origin's commit
    /// log, and propagate.
    fn commit_local(&mut self, site: SiteId, gid: GlobalTxnId, diags: &mut Vec<Diagnostic>) {
        let Some(t) = self.fleet.txn_info.get(&gid).cloned() else {
            self.poisoned = true;
            diags.push(Diagnostic::error(
                "MC006",
                format!("{site} issued CommitLocal for unknown transaction {gid}"),
                Witness::None,
            ));
            return;
        };
        let reads: Vec<(ItemId, Option<GlobalTxnId>)> = t
            .reads
            .iter()
            .map(|&i| (i, self.stores[site.index()].get(&i).and_then(|(_, w)| *w)))
            .collect();
        self.txn_reads.insert(gid, reads);
        for (item, value) in &t.writes {
            self.stores[site.index()].insert(*item, (value.clone(), Some(gid)));
        }
        self.committed.insert(gid);
        self.commit_log[site.index()].push(gid);
        self.commit_index.insert(gid, self.commit_log[site.index()].len() as u64);
        self.eager_waiting.remove(&gid);
        self.feed(site, Input::Committed { gid, writes: t.writes }, diags);
    }

    /// MC003: a secondary apply (or prepared commit) of `gid` at `site`
    /// must respect the origin's commit order.
    fn note_apply(&mut self, site: SiteId, gid: GlobalTxnId, diags: &mut Vec<Diagnostic>) {
        if gid.seq == DUMMY_SEQ {
            return;
        }
        let Some(&idx) = self.commit_index.get(&gid) else {
            self.poisoned = true;
            diags.push(Diagnostic::error(
                "MC003",
                format!("{site} applied {gid} before its origin committed it"),
                Witness::None,
            ));
            return;
        };
        let last = self.last_applied[site.index()].entry(gid.origin).or_insert(0);
        if idx <= *last {
            diags.push(Diagnostic::error(
                "MC003",
                format!(
                    "{site} applied {gid} (commit index {idx} at {}) after already applying index {}",
                    gid.origin, *last
                ),
                Witness::None,
            ));
        } else {
            *last = idx;
        }
    }

    /// Link discipline: every `Send` targets a legal neighbour.
    fn check_link(&self, from: SiteId, to: SiteId, payload: &Payload) -> Option<Diagnostic> {
        let bad = |why: String| {
            Some(Diagnostic::error(
                "MC003",
                format!("illegal send {from} -> {to}: {why}"),
                Witness::None,
            ))
        };
        if to.index() >= self.num_sites() || to == from {
            return bad("unknown link".to_string());
        }
        match self.fleet.protocol {
            ProtocolId::NaiveLazy => {
                if let Payload::Subtxn(sub) = payload {
                    let ok = !sub.writes.is_empty()
                        && sub.writes.iter().all(|(i, _)| self.fleet.placement.has_copy(to, *i));
                    if !ok {
                        return bad(format!("{to} holds no copy of the payload's items"));
                    }
                }
            }
            ProtocolId::DagWt => {
                let tree = self.fleet.tree.as_ref().expect("DAG(WT) has a tree");
                if tree.parent(to) != Some(from) {
                    return bad("not a propagation-tree edge".to_string());
                }
            }
            ProtocolId::DagT => {
                if !self.fleet.graph.has_edge(from, to) {
                    return bad("not a copy-graph edge".to_string());
                }
            }
            ProtocolId::BackEdge => {
                let tree = self.fleet.tree.as_ref().expect("BackEdge has a tree");
                if !tree.is_ancestor(from, to) && !tree.is_ancestor(to, from) {
                    return bad("neither up nor down the tree".to_string());
                }
            }
        }
        None
    }

    /// MC004: no site's epoch ever decreases.
    fn check_epochs(&mut self, diags: &mut Vec<Diagnostic>) {
        for s in 0..self.num_sites() {
            let epoch = self.machines[s].site_ts().epoch;
            let floor = &mut self.epoch_floor[s];
            if epoch < *floor {
                diags.push(Diagnostic::error(
                    "MC004",
                    format!("epoch at {} regressed from {} to {}", SiteId(s as u32), floor, epoch),
                    Witness::None,
                ));
            } else {
                *floor = epoch;
            }
        }
    }

    // ------------------------------------------------------------------
    // State oracles.
    // ------------------------------------------------------------------

    /// All planned work done, network drained, appliers idle, no site
    /// down, machines holding nothing but (for DAG(T)) unconsumed
    /// dummies.
    pub fn quiescent(&self) -> bool {
        (0..self.num_sites()).all(|s| {
            self.next_txn[s] == self.fleet.plan[s].len()
                && self.applier[s].is_none()
                && self.direct_preps[s].is_empty()
                && !self.crashed[s]
        }) && self.links.values().all(VecDeque::is_empty)
            && self.eager_waiting.is_empty()
            && self.machines.iter().all(|m| {
                if self.fleet.protocol == ProtocolId::DagT {
                    m.no_pending_updates()
                } else {
                    m.secondaries_idle()
                }
            })
    }

    /// State-predicate oracles, run once per distinct state: MC002
    /// always, MC001 (convergence) when the state is quiescent.
    pub fn check_state(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        if let Err(cycle) = self.observed_history().check_serializability() {
            let rendered: Vec<String> = cycle
                .cycle
                .iter()
                .map(|g| {
                    if g.seq == OBSERVER_SEQ {
                        format!("observer@{}", g.origin)
                    } else {
                        format!("{g}")
                    }
                })
                .collect();
            diags.push(Diagnostic::error(
                "MC002",
                format!(
                    "committed history plus observer snapshots is not one-copy serializable \
                     (cycle: {})",
                    rendered.join(" -> ")
                ),
                Witness::None,
            ));
        }
        if self.quiescent() {
            for item in self.fleet.placement.items() {
                let primary = self.fleet.placement.primary_of(item);
                let want = self.stores[primary.index()]
                    .get(&item)
                    .map(|(v, _)| v.clone())
                    .unwrap_or_default();
                for &r in self.fleet.placement.replicas_of(item) {
                    let got = self.stores[r.index()]
                        .get(&item)
                        .map(|(v, _)| v.clone())
                        .unwrap_or_default();
                    if got != want {
                        diags.push(Diagnostic::error(
                            "MC001",
                            format!(
                                "at quiescence, {item} diverged at {r} \
                                 (primary {primary}: {want:?}, replica: {got:?})"
                            ),
                            Witness::None,
                        ));
                    }
                }
            }
        }
        diags
    }

    /// Oracle for a dead-end state: no enabled action, not quiescent.
    /// DAG(T) branches that starved their heartbeat budget are bound
    /// artifacts and stay silent.
    pub fn check_stall(&self) -> Option<Diagnostic> {
        if self.poisoned || self.quiescent() || self.fleet.protocol == ProtocolId::DagT {
            return None;
        }
        Some(Diagnostic::error(
            "MC001",
            format!(
                "{} stalled before quiescence (links {:?})",
                self.fleet.protocol,
                self.links.iter().map(|(k, q)| (*k, q.len())).collect::<Vec<_>>()
            ),
            Witness::None,
        ))
    }

    /// The committed history this state's stores witness: every
    /// committed transaction (with the versions it read at its origin)
    /// in per-origin commit order, plus one read-only observer per site
    /// snapshotting the site's current copies.
    fn observed_history(&self) -> History {
        let mut h = History::new();
        for log in &self.commit_log {
            for gid in log {
                let t = &self.fleet.txn_info[gid];
                let reads = self.txn_reads.get(gid).cloned().unwrap_or_default();
                let writes: Vec<ItemId> = t.writes.iter().map(|(i, _)| *i).collect();
                h.record_commit(*gid, reads, writes);
            }
        }
        for s in 0..self.num_sites() {
            let site = SiteId(s as u32);
            let reads: Vec<(ItemId, Option<GlobalTxnId>)> = self
                .fleet
                .placement
                .items_at(site)
                .iter()
                .map(|&i| (i, self.stores[s].get(&i).and_then(|(_, w)| *w)))
                .collect();
            h.record_commit(GlobalTxnId::new(site, OBSERVER_SEQ), reads, Vec::new());
        }
        h
    }

    // ------------------------------------------------------------------
    // Fingerprints and independence.
    // ------------------------------------------------------------------

    /// The state's canonical 128-bit fingerprint (dedup identity). All
    /// mutable state is hashed — machines, stores with writer tags,
    /// non-empty links, applier slots, prepare queues, cursors, commit
    /// logs, recorded reads, fault flags and budgets, and the oracle
    /// watermarks — so two equal fingerprints satisfy exactly the same
    /// present- and future-state oracles.
    pub fn fingerprint(&self) -> u128 {
        let mut d = StableDigest::new();
        for m in &self.machines {
            m.fingerprint(&mut d);
        }
        for store in &self.stores {
            d.write_usize(store.len());
            for (item, (value, writer)) in store {
                d.write_u32(item.0);
                digest_value(&mut d, value);
                match writer {
                    None => d.write_u8(0),
                    Some(g) => {
                        d.write_u8(1);
                        digest_gid(&mut d, *g);
                    }
                }
            }
        }
        d.write_usize(self.links.values().filter(|q| !q.is_empty()).count());
        for ((from, to), q) in &self.links {
            if q.is_empty() {
                continue;
            }
            digest_site(&mut d, *from);
            digest_site(&mut d, *to);
            d.write_usize(q.len());
            for p in q {
                digest_payload(&mut d, p);
            }
        }
        for slot in &self.applier {
            match slot {
                None => d.write_u8(0),
                Some(p) => {
                    d.write_u8(1);
                    digest_gid(&mut d, p.gid);
                    digest_writes(&mut d, &p.writes);
                    d.write_u8(u8::from(p.prepare));
                }
            }
        }
        for preps in &self.direct_preps {
            d.write_usize(preps.len());
            for (gid, writes) in preps {
                digest_gid(&mut d, *gid);
                digest_writes(&mut d, writes);
            }
        }
        for &c in &self.next_txn {
            d.write_usize(c);
        }
        for log in &self.commit_log {
            d.write_usize(log.len());
            for g in log {
                digest_gid(&mut d, *g);
            }
        }
        d.write_usize(self.txn_reads.len());
        for (gid, reads) in &self.txn_reads {
            digest_gid(&mut d, *gid);
            d.write_usize(reads.len());
            for (item, writer) in reads {
                d.write_u32(item.0);
                match writer {
                    None => d.write_u8(0),
                    Some(g) => {
                        d.write_u8(1);
                        digest_gid(&mut d, *g);
                    }
                }
            }
        }
        d.write_usize(self.eager_waiting.len());
        for g in &self.eager_waiting {
            digest_gid(&mut d, *g);
        }
        d.write_usize(self.aborted.len());
        for g in &self.aborted {
            digest_gid(&mut d, *g);
        }
        for &c in &self.crashed {
            d.write_u8(u8::from(c));
        }
        for &b in &self.hb_budget {
            d.write_u32(b);
        }
        d.write_u32(self.crash_budget);
        for applied in &self.last_applied {
            d.write_usize(applied.len());
            for (origin, idx) in applied {
                digest_site(&mut d, *origin);
                d.write_u64(*idx);
            }
        }
        for &e in &self.epoch_floor {
            d.write_u64(e);
        }
        d.finish()
    }

    /// Sleep-set independence: two enabled actions commute (and neither
    /// disables the other) when their touched-site sets are disjoint.
    /// Pushes and pops on a shared non-empty FIFO link commute, so a
    /// `Deliver` touches only its *receiver*. Heartbeats read link and
    /// queue idleness across the fleet, so they are dependent with
    /// everything; two crashes share the crash budget.
    pub fn independent(&self, a: Action, b: Action) -> bool {
        if matches!(a, Action::Heartbeat(_)) || matches!(b, Action::Heartbeat(_)) {
            return false;
        }
        if matches!(a, Action::Crash(_)) && matches!(b, Action::Crash(_)) {
            return false;
        }
        let ta = self.touched(a);
        let tb = self.touched(b);
        ta.iter().all(|s| !tb.contains(s))
    }

    /// The sites whose machine, store, slot, lock or cursor state the
    /// action reads or writes (link queues are excluded by the FIFO
    /// commutation argument above).
    fn touched(&self, a: Action) -> Vec<SiteId> {
        match a {
            Action::Commit(s) | Action::Complete(s) | Action::Prep(s) | Action::Crash(s) => vec![s],
            Action::Deliver(_, to) => vec![to],
            Action::AbortEager(g) => vec![g.origin],
            Action::Heartbeat(s) => vec![s],
            Action::Restart(s) => {
                let mut v = vec![s];
                for &src in &self.fleet.sources {
                    if !v.contains(&src) {
                        v.push(src);
                    }
                }
                v
            }
        }
    }
}
