//! `replmc`: exhaustive bounded model checking of the protocol machines.
//!
//! The sans-I/O [`SiteMachine`] already runs under a discrete-event
//! simulator, a property-based differential harness, and a real TCP
//! deployment — all of which *sample* schedules. This module closes the
//! remaining gap: for small bounded workloads it drives a fleet of
//! machines through **every** interleaving of deliverable inputs and
//! checks the paper's correctness claims as oracles on each reached
//! state.
//!
//! The pieces:
//!
//! * [`scenario`] — bounded workloads: 2–4 sites in one of four
//!   canonical placement shapes, 2–3 transactions, per-protocol budgets.
//! * [`world`] — one global state (machines + links + stores + fault
//!   bookkeeping), the scheduler's [`Action`] alphabet, and the
//!   `MC001`–`MC006` oracles.
//! * [`explore`] — the DFS with sleep-set pruning and state-fingerprint
//!   dedup; both reductions are sound (the differential test checks the
//!   pruned explorer against brute force at tiny bounds).
//! * [`shrink`] — greedy 1-minimal counterexample reduction with
//!   skip-disabled replay, so every finding ships a short schedule that
//!   reproduces it from the initial state.
//!
//! [`check_scenario`] ties them together; [`gate_matrix`] is the fixed
//! scenario set CI runs (`mc_smoke` in `tools/ci.sh`), one per
//! protocol, each expected clean. NaiveLazy on the cyclic `cross`
//! topology is deliberately *not* in the gate: there the checker
//! rediscovers Example 1.1's non-serializable history, which the test
//! suite pins as a positive control.
//!
//! [`SiteMachine`]: repl_protocol::SiteMachine

pub mod explore;
pub mod scenario;
pub mod shrink;
pub mod world;

pub use explore::{explore, Bounds, Config, Finding, Report, Stats};
pub use scenario::{PlannedTxn, Scenario, Topology};
pub use shrink::{replay, shrink, Replay};
pub use world::{Action, World, OBSERVER_SEQ};

use repl_protocol::ProtocolId;

use crate::diag::Witness;

/// Explore `scenario` under `config`, then shrink every finding to a
/// 1-minimal schedule and attach it as a replayable
/// [`Witness::McTrace`].
pub fn check_scenario(scenario: &Scenario, config: &Config) -> Result<Report, String> {
    let mut report = explore::explore(scenario, config)?;
    for f in &mut report.findings {
        f.trace = shrink::shrink(scenario, &f.trace, f.diagnostic.code);
        f.diagnostic.witness =
            Witness::McTrace { steps: f.trace.iter().map(|a| a.to_string()).collect() };
    }
    // Distinct raw traces often shrink to the same minimal schedule.
    let mut seen = std::collections::BTreeSet::new();
    report.findings.retain(|f| seen.insert((f.diagnostic.code, f.trace.clone())));
    Ok(report)
}

/// The CI gate matrix: one scenario per protocol, each on the topology
/// that exercises its load-bearing machinery, each expected to explore
/// exhaustively with zero diagnostics.
pub fn gate_matrix() -> Vec<Scenario> {
    vec![
        Scenario::new(ProtocolId::NaiveLazy, Topology::Fan, 3, 2),
        Scenario::new(ProtocolId::DagWt, Topology::Chain, 3, 2),
        Scenario::new(ProtocolId::DagT, Topology::Chain, 3, 2),
        Scenario::new(ProtocolId::BackEdge, Topology::Cross, 3, 2),
    ]
}
