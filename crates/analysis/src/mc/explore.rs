//! The DFS explorer: every interleaving, minus the provably redundant.
//!
//! A depth-first search over cloned [`World`]s enumerates every
//! scheduler interleaving of a scenario's enabled actions, with two
//! sound reductions:
//!
//! * **Sleep sets** (Godefroid). After exploring sibling `a` from a
//!   state, `a` enters the *sleep set* of the branches explored after
//!   it, and stays asleep along a path as long as every action taken is
//!   independent of it — executing it there would provably commute to a
//!   schedule already explored. Sleep sets prune *transitions only*:
//!   every reachable state is still visited, so the state-predicate
//!   oracles lose no coverage (the differential test in
//!   `tests/mc_differential.rs` pins exactly this).
//! * **State-fingerprint dedup.** Each state's canonical 128-bit digest
//!   ([`World::fingerprint`]) maps to the set of sleep sets it was
//!   explored under; a revisit is skipped iff some stored sleep set is
//!   a subset of the current one (the standard sound combination of
//!   state caching with sleep sets — a *larger* current sleep set means
//!   a subset of the previously explored transitions).
//!
//! Exploration is bounded by `max_states`/`max_depth`; hitting either
//! marks the report truncated (gates treat truncation as failure to
//! *exhaustively* explore, distinct from finding a violation).

use std::collections::{BTreeSet, HashMap};

use super::scenario::Scenario;
use super::world::{Action, World};
use crate::diag::Diagnostic;

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct Bounds {
    /// Maximum distinct states to visit before truncating.
    pub max_states: usize,
    /// Maximum schedule depth before truncating a branch.
    pub max_depth: usize,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds { max_states: 2_000_000, max_depth: 4_096 }
    }
}

/// Explorer configuration. Both reductions default on; the differential
/// test turns them off to cross-check verdicts against brute force.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Enable sleep-set transition pruning.
    pub sleep_sets: bool,
    /// Enable state-fingerprint dedup.
    pub dedup: bool,
    /// Exploration limits.
    pub bounds: Bounds,
}

impl Default for Config {
    fn default() -> Self {
        Config { sleep_sets: true, dedup: true, bounds: Bounds::default() }
    }
}

/// Exploration statistics (the gate prints these).
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// States visited (with dedup on: distinct states).
    pub states: usize,
    /// Transitions executed.
    pub transitions: usize,
    /// Transitions skipped because they were asleep.
    pub sleep_skips: usize,
    /// Revisits pruned by the fingerprint cache.
    pub dedup_hits: usize,
    /// Quiescent states reached (must be > 0 for a meaningful run).
    pub quiescent_states: usize,
    /// Deepest schedule explored.
    pub max_depth_seen: usize,
    /// True if a bound cut the exploration short.
    pub truncated: bool,
}

/// One violation, with the schedule that reached it.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The diagnostic (witness filled with the trace by the caller).
    pub diagnostic: Diagnostic,
    /// The schedule from the initial state to the violation.
    pub trace: Vec<Action>,
}

/// The result of exploring one scenario.
#[derive(Debug)]
pub struct Report {
    /// Violations, at most one per (code, first-seen) — exploration of a
    /// violating branch stops at the violation.
    pub findings: Vec<Finding>,
    /// Exploration statistics.
    pub stats: Stats,
    /// Every distinct state fingerprint visited (differential testing).
    pub fingerprints: BTreeSet<u128>,
}

/// Cap on retained findings; exploration continues (other codes may
/// still surface) but further findings of an already-seen code are
/// dropped.
const MAX_FINDINGS_PER_CODE: usize = 2;

struct Explorer {
    config: Config,
    stats: Stats,
    findings: Vec<Finding>,
    /// fingerprint → minimal antichain of sleep sets explored under.
    visited: HashMap<u128, Vec<BTreeSet<Action>>>,
    /// fingerprints whose state-oracles already ran.
    checked: BTreeSet<u128>,
    /// fingerprints whose state-oracles reported a violation; their
    /// futures prove nothing new and are never explored.
    bad: BTreeSet<u128>,
    fingerprints: BTreeSet<u128>,
    path: Vec<Action>,
}

/// Exhaustively explore `scenario` under `config`.
pub fn explore(scenario: &Scenario, config: &Config) -> Result<Report, String> {
    let world = World::new(scenario)?;
    let mut ex = Explorer {
        config: *config,
        stats: Stats::default(),
        findings: Vec::new(),
        visited: HashMap::new(),
        checked: BTreeSet::new(),
        bad: BTreeSet::new(),
        fingerprints: BTreeSet::new(),
        path: Vec::new(),
    };
    ex.dfs(&world, BTreeSet::new());
    Ok(Report { findings: ex.findings, stats: ex.stats, fingerprints: ex.fingerprints })
}

impl Explorer {
    fn record(&mut self, diags: Vec<Diagnostic>) {
        for d in diags {
            let seen = self.findings.iter().filter(|f| f.diagnostic.code == d.code).count();
            if seen < MAX_FINDINGS_PER_CODE {
                self.findings.push(Finding { diagnostic: d, trace: self.path.clone() });
            }
        }
    }

    fn dfs(&mut self, world: &World, sleep: BTreeSet<Action>) {
        if self.stats.truncated {
            return;
        }
        self.stats.states += 1;
        self.stats.max_depth_seen = self.stats.max_depth_seen.max(self.path.len());
        if self.stats.states > self.config.bounds.max_states
            || self.path.len() > self.config.bounds.max_depth
        {
            self.stats.truncated = true;
            return;
        }

        let fp = world.fingerprint();
        self.fingerprints.insert(fp);

        // State-predicate oracles, once per distinct state.
        if self.bad.contains(&fp) {
            return;
        }
        if self.checked.insert(fp) || !self.config.dedup {
            let diags = world.check_state();
            let fatal = !diags.is_empty();
            self.record(diags);
            if world.quiescent() {
                self.stats.quiescent_states += 1;
            }
            if fatal {
                // a violating state's futures prove nothing new
                self.bad.insert(fp);
                return;
            }
        }

        let enabled = world.enabled_actions();
        if enabled.is_empty() {
            self.record(world.check_stall().into_iter().collect());
            return;
        }

        if self.config.dedup {
            let stored = self.visited.entry(fp).or_default();
            if stored.iter().any(|s| s.is_subset(&sleep)) {
                self.stats.dedup_hits += 1;
                return;
            }
            stored.retain(|s| !sleep.is_subset(s));
            stored.push(sleep.clone());
        }

        let mut explored_here: Vec<Action> = Vec::new();
        for &a in &enabled {
            if sleep.contains(&a) {
                self.stats.sleep_skips += 1;
                continue;
            }
            let mut child = world.clone();
            let mut diags = Vec::new();
            child.apply(a, &mut diags);
            self.stats.transitions += 1;
            self.path.push(a);
            let fatal = !diags.is_empty();
            self.record(diags);
            if !fatal && !child.poisoned() {
                let child_sleep: BTreeSet<Action> = if self.config.sleep_sets {
                    sleep
                        .iter()
                        .chain(explored_here.iter())
                        .copied()
                        .filter(|&b| child.independent(a, b))
                        .collect()
                } else {
                    BTreeSet::new()
                };
                self.dfs(&child, child_sleep);
            }
            self.path.pop();
            explored_here.push(a);
            if self.stats.truncated {
                return;
            }
        }
    }
}
