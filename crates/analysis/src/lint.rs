//! The configuration / copy-graph linter.
//!
//! A static pass over a data placement, its copy graph, and the timing
//! parameters of a run — executed *before* any simulation so that broken
//! configurations fail fast with a structural witness instead of burning a
//! long run and producing garbage. The checks mirror the protocol
//! preconditions of Breitbart et al.:
//!
//! | code  | severity | check |
//! |-------|----------|-------|
//! | RA001 | error    | copy graph cyclic while the protocol requires a DAG (§2/§3) |
//! | RA002 | error    | propagation tree violates the ancestor property (§2) |
//! | RA003 | warning  | backedge set is not minimal (§4: redundant backedge) |
//! | RA004 | error    | backedge set does not break all cycles (§4) |
//! | RA005 | error    | replica unreachable from its primary through the propagation structure |
//! | RA006 | warning  | DAG(T) epoch period shorter than the network latency (§3.3) |
//! | RA007 | warning  | deadlock timeout shorter than a network round trip |
//! | RA008 | warning  | retry backoff at or above the deadlock timeout |
//! | RA009 | error    | DAG(T) site numbering is not a topological order (§3.1) |
//! | RA010 | error    | crash faults injected under a protocol without crash recovery |
//! | RA011 | error    | malformed cluster address map (duplicate/out-of-range site, missing peer, shared address, bad host:port) |
//!
//! The structural checks are also exported individually
//! ([`check_copy_graph`], [`check_tree`], [`check_backedge_set`],
//! [`check_replica_reachability`]) so tests can aim them at deliberately
//! corrupted inputs.

use repl_copygraph::{BackEdgeSet, CopyGraph, DataPlacement, PropagationTree};
use repl_types::{AddressMap, SiteId};

use crate::diag::{Diagnostic, Witness};

/// Protocol under lint — mirrors `repl-core`'s `ProtocolKind` without
/// depending on it (the core crate sits *above* this one so its engine can
/// invoke the linter).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LintProtocol {
    /// Indiscriminate lazy propagation (Example 1.1 strawman).
    NaiveLazy,
    /// DAG(WT): tree-routed lazy propagation (§2). Needs a DAG.
    DagWt,
    /// DAG(T): timestamped lazy propagation with epochs (§3). Needs a DAG
    /// whose site numbering is topological.
    DagT,
    /// BackEdge: eager along backedges, lazy elsewhere (§4).
    BackEdge,
    /// Primary-site locking baseline (§5.1).
    Psl,
    /// Eager read-one-write-all baseline.
    Eager,
}

impl LintProtocol {
    /// True if the protocol's precondition is an acyclic copy graph.
    pub fn requires_dag(self) -> bool {
        matches!(self, LintProtocol::DagWt | LintProtocol::DagT)
    }

    /// True if the engine's crash-recovery path covers this protocol.
    ///
    /// BackEdge loses eagerly prepared writes and Eager loses provisional
    /// remote X-lock state when a participating site crashes; neither has
    /// a recovery story in the paper, so a crash plan under them would
    /// diverge silently. The lazy protocols recover from the WAL plus the
    /// delivery backlog (§3.3).
    pub fn supports_crash_faults(self) -> bool {
        !matches!(self, LintProtocol::BackEdge | LintProtocol::Eager)
    }
}

/// Propagation-tree shape, mirroring `repl-core`'s `TreeKind`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LintTree {
    /// Chain over a topological order (the paper's prototype, §5.1).
    Chain,
    /// General branching tree (§2).
    General,
}

/// Everything the linter needs to know about a run configuration.
/// Durations are in microseconds to keep this crate's dependencies to
/// `repl-types` + `repl-copygraph`.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Protocol the run will deploy.
    pub protocol: LintProtocol,
    /// Tree construction used by DAG(WT)/BackEdge.
    pub tree: LintTree,
    /// One-way network latency, µs.
    pub network_latency_us: u64,
    /// Lock-wait deadlock timeout, µs.
    pub deadlock_timeout_us: u64,
    /// Backoff before retrying a deadlock-aborted transaction, µs.
    pub retry_backoff_us: u64,
    /// DAG(T) epoch period, µs.
    pub epoch_period_us: u64,
    /// True if the run's fault plan schedules at least one site crash.
    pub crash_faults: bool,
}

/// Lint a full scenario: derive the copy graph and the protocol's
/// propagation structure from `placement` exactly as the engine would,
/// then run every applicable check.
pub fn lint_scenario(placement: &DataPlacement, cfg: &LintConfig) -> Vec<Diagnostic> {
    let graph = CopyGraph::from_placement(placement);
    let mut diags = Vec::new();

    diags.extend(check_copy_graph(&graph, cfg.protocol));

    match cfg.protocol {
        LintProtocol::DagWt => {
            if let Ok(tree) = build_tree(&graph, cfg.tree) {
                let constraints: Vec<_> =
                    graph.edges().into_iter().map(|(u, v, _)| (u, v)).collect();
                diags.extend(check_tree(&tree, &constraints));
                diags.extend(check_replica_reachability(placement, &tree, None));
            }
        }
        LintProtocol::DagT => {
            diags.extend(check_site_order_topological(&graph));
        }
        LintProtocol::BackEdge => {
            let backedges = BackEdgeSet::by_site_order(&graph);
            diags.extend(check_backedge_set(&graph, &backedges));
            if backedges.is_valid(&graph) {
                let constraints = backedges.augmented_constraints(&graph);
                let mut cg = CopyGraph::empty(placement.num_sites());
                for &(u, v) in &constraints {
                    cg.add_edge(u, v, 1);
                }
                if let Ok(tree) = build_tree(&cg, cfg.tree) {
                    diags.extend(check_tree(&tree, &constraints));
                    diags.extend(check_replica_reachability(placement, &tree, Some(&backedges)));
                }
            }
        }
        LintProtocol::NaiveLazy | LintProtocol::Psl | LintProtocol::Eager => {}
    }

    diags.extend(check_timing(cfg));
    diags.extend(check_fault_plan(cfg));
    diags
}

fn build_tree(graph: &CopyGraph, kind: LintTree) -> Result<PropagationTree, ()> {
    match kind {
        LintTree::Chain => PropagationTree::chain(graph).map_err(|_| ()),
        LintTree::General => PropagationTree::general(graph).map_err(|_| ()),
    }
}

/// Find one directed cycle in `graph`, as the ordered list of sites on it.
pub fn find_cycle(graph: &CopyGraph) -> Option<Vec<SiteId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let n = graph.num_sites();
    let mut color = vec![Color::White; n as usize];
    for start in 0..n {
        if color[start as usize] != Color::White {
            continue;
        }
        let mut stack: Vec<(SiteId, Vec<SiteId>)> =
            vec![(SiteId(start), graph.children(SiteId(start)).collect())];
        let mut path = vec![SiteId(start)];
        color[start as usize] = Color::Grey;
        while let Some((node, succs)) = stack.last_mut() {
            if let Some(next) = succs.pop() {
                match color[next.index()] {
                    Color::Grey => {
                        let pos = path.iter().position(|&s| s == next).expect("grey is on path");
                        return Some(path[pos..].to_vec());
                    }
                    Color::White => {
                        color[next.index()] = Color::Grey;
                        path.push(next);
                        let children = graph.children(next).collect();
                        stack.push((next, children));
                    }
                    Color::Black => {}
                }
            } else {
                color[node.index()] = Color::Black;
                path.pop();
                stack.pop();
            }
        }
    }
    None
}

/// RA001: the protocol requires a DAG but the copy graph has a cycle.
pub fn check_copy_graph(graph: &CopyGraph, protocol: LintProtocol) -> Vec<Diagnostic> {
    if !protocol.requires_dag() {
        return Vec::new();
    }
    match find_cycle(graph) {
        Some(cycle) => {
            let path: Vec<String> = cycle.iter().map(|s| s.to_string()).collect();
            vec![Diagnostic::error(
                "RA001",
                format!(
                    "copy graph has a cycle ({} -> {}) but {:?} requires a DAG; \
                     remove backedges (§4) or run BackEdge",
                    path.join(" -> "),
                    path[0],
                    protocol,
                ),
                Witness::Cycle(cycle),
            )]
        }
        None => Vec::new(),
    }
}

/// RA002: every constraint `(u, v)` must have `u` a strict tree ancestor
/// of `v` (§2 ancestor property). One diagnostic per violated constraint.
pub fn check_tree(tree: &PropagationTree, constraints: &[(SiteId, SiteId)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for &(u, v) in constraints {
        if !tree.is_ancestor(u, v) {
            diags.push(Diagnostic::error(
                "RA002",
                format!(
                    "propagation tree violates the ancestor property: {u} must be an \
                     ancestor of {v} (copy-graph edge {u} -> {v}) but is not"
                ),
                Witness::Edge { from: u, to: v },
            ));
        }
    }
    diags
}

/// RA004 + RA003: the backedge set must break every cycle (error), and
/// should contain no redundant edge — one whose re-insertion into the
/// remaining DAG closes no cycle (warning; §4 assumes minimality).
pub fn check_backedge_set(graph: &CopyGraph, set: &BackEdgeSet) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let dag = set.dag_of(graph);
    if let Some(cycle) = find_cycle(&dag) {
        let path: Vec<String> = cycle.iter().map(|s| s.to_string()).collect();
        diags.push(Diagnostic::error(
            "RA004",
            format!(
                "backedge set does not break all cycles: {} -> {} survives removal",
                path.join(" -> "),
                path[0],
            ),
            Witness::Cycle(cycle),
        ));
        return diags;
    }
    for &(from, to) in set.edges() {
        // `(from, to)` is redundant iff re-inserting it closes no cycle,
        // i.e. `from` is NOT reachable from `to` in the remaining DAG.
        if !dag.reachable_from(to)[from.index()] {
            diags.push(Diagnostic::warning(
                "RA003",
                format!(
                    "backedge set is not minimal: removing {from} -> {to} still leaves \
                     every cycle broken (§4 assumes a minimal set)"
                ),
                Witness::Edge { from, to },
            ));
        }
    }
    diags
}

/// RA005: every secondary copy must be deliverable — its site a tree
/// descendant of the item's primary (or, for BackEdge, the target of a
/// backedge from the primary, in which case delivery is eager).
pub fn check_replica_reachability(
    placement: &DataPlacement,
    tree: &PropagationTree,
    backedges: Option<&BackEdgeSet>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for item in placement.items() {
        let primary = placement.primary_of(item);
        for &replica in placement.replicas_of(item) {
            if let Some(b) = backedges {
                if b.contains(primary, replica) {
                    continue;
                }
            }
            if !tree.is_ancestor(primary, replica) {
                diags.push(Diagnostic::error(
                    "RA005",
                    format!(
                        "replica of {item} at {replica} is unreachable: {replica} is not \
                         a tree descendant of the primary {primary}, so updates would \
                         never be delivered"
                    ),
                    Witness::Replica { item, primary, replica },
                ));
            }
        }
    }
    diags
}

/// RA009: DAG(T) compares timestamps by site id (§3.1 "without loss of
/// generality"), so the identity order must be topological.
pub fn check_site_order_topological(graph: &CopyGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if !graph.is_dag() {
        // RA001 already covers the cycle; id order is moot.
        return diags;
    }
    for (from, to, _) in graph.edges() {
        if to < from {
            diags.push(Diagnostic::error(
                "RA009",
                format!(
                    "DAG(T) requires site ids to form a topological order of the copy \
                     graph, but edge {from} -> {to} points to a lower id"
                ),
                Witness::Edge { from, to },
            ));
        }
    }
    diags
}

/// RA006–RA008: timing-parameter sanity.
pub fn check_timing(cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if cfg.protocol == LintProtocol::DagT && cfg.epoch_period_us < cfg.network_latency_us {
        diags.push(Diagnostic::warning(
            "RA006",
            format!(
                "epoch period ({} µs) is shorter than the one-way network latency \
                 ({} µs): epochs will pile up in flight faster than links drain (§3.3)",
                cfg.epoch_period_us, cfg.network_latency_us
            ),
            Witness::Timing { value_us: cfg.epoch_period_us, bound_us: cfg.network_latency_us },
        ));
    }
    let round_trip = 2 * cfg.network_latency_us;
    if cfg.deadlock_timeout_us < round_trip {
        diags.push(Diagnostic::warning(
            "RA007",
            format!(
                "deadlock timeout ({} µs) is shorter than a network round trip \
                 ({} µs): every remote lock wait will be aborted as a false deadlock",
                cfg.deadlock_timeout_us, round_trip
            ),
            Witness::Timing { value_us: cfg.deadlock_timeout_us, bound_us: round_trip },
        ));
    }
    if cfg.retry_backoff_us >= cfg.deadlock_timeout_us {
        diags.push(Diagnostic::warning(
            "RA008",
            format!(
                "retry backoff ({} µs) is at or above the deadlock timeout ({} µs): \
                 retries arrive no sooner than fresh timeouts fire, risking livelock",
                cfg.retry_backoff_us, cfg.deadlock_timeout_us
            ),
            Witness::Timing { value_us: cfg.retry_backoff_us, bound_us: cfg.deadlock_timeout_us },
        ));
    }
    diags
}

/// RA010: the fault plan schedules site crashes but the protocol has no
/// crash-recovery path — BackEdge's eagerly prepared subtransactions and
/// Eager's provisional remote writes are lost with the crashed site, so
/// the run would silently diverge instead of recovering.
pub fn check_fault_plan(cfg: &LintConfig) -> Vec<Diagnostic> {
    if cfg.crash_faults && !cfg.protocol.supports_crash_faults() {
        return vec![Diagnostic::error(
            "RA010",
            format!(
                "fault plan schedules site crashes but {:?} has no crash-recovery \
                 path (eager/prepared state is lost with the site); restrict crash \
                 plans to the lazy protocols or clear the plan",
                cfg.protocol,
            ),
            Witness::None,
        )];
    }
    Vec::new()
}

/// RA011: validate a cluster address map before any socket is opened.
///
/// A process-per-site deployment dials every peer from this map, so a
/// malformed map produces confusing runtime failures (two sites
/// answering for one id, a dialer spinning forever on a missing peer, a
/// site handshaking with itself). Each problem is reported as an error:
///
/// - a site id listed more than once,
/// - a site id outside `0..num_sites`,
/// - a site in `0..num_sites` with no entry (the dialer would wait for
///   an address that never arrives),
/// - one address shared by two different sites (a dialer would reach the
///   wrong peer — or itself, the self-dial case),
/// - an address that is not `host:port` with a numeric port.
pub fn check_address_map(map: &AddressMap, num_sites: u32) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let entries = map.entries();
    for window in entries.windows(2) {
        // Entries are kept sorted by site id, so duplicates are adjacent.
        if window[0].0 == window[1].0 {
            diags.push(Diagnostic::error(
                "RA011",
                format!(
                    "site {} has multiple addresses ({:?} and {:?}); a dialer would \
                     pick one arbitrarily",
                    window[0].0 .0, window[0].1, window[1].1,
                ),
                Witness::None,
            ));
        }
    }
    for (site, addr) in entries {
        if site.0 >= num_sites {
            diags.push(Diagnostic::error(
                "RA011",
                format!(
                    "address map names site {} but the placement has only {num_sites} \
                     sites (0..{num_sites})",
                    site.0,
                ),
                Witness::None,
            ));
        }
        let well_formed = addr
            .rsplit_once(':')
            .is_some_and(|(host, port)| !host.is_empty() && port.parse::<u16>().is_ok());
        if !well_formed {
            diags.push(Diagnostic::error(
                "RA011",
                format!("site {} address {addr:?} is not host:port with a numeric port", site.0),
                Witness::None,
            ));
        }
    }
    for site in (0..num_sites).map(SiteId) {
        if map.get(site).is_none() {
            diags.push(Diagnostic::error(
                "RA011",
                format!("site {} has no address; its peers could never dial it", site.0),
                Witness::None,
            ));
        }
    }
    for (i, (site_a, addr_a)) in entries.iter().enumerate() {
        for (site_b, addr_b) in &entries[i + 1..] {
            if site_a != site_b && addr_a == addr_b {
                diags.push(Diagnostic::error(
                    "RA011",
                    format!(
                        "sites {} and {} share address {addr_a:?}; site {} dialing \
                         that address would reach the wrong process (self-dial)",
                        site_a.0, site_b.0, site_a.0,
                    ),
                    Witness::Edge { from: *site_a, to: *site_b },
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{has_errors, Severity};

    fn s(n: u32) -> SiteId {
        SiteId(n)
    }

    fn defaults(protocol: LintProtocol) -> LintConfig {
        LintConfig {
            protocol,
            tree: LintTree::Chain,
            network_latency_us: 150,
            deadlock_timeout_us: 50_000,
            retry_backoff_us: 5_000,
            epoch_period_us: 50_000,
            crash_faults: false,
        }
    }

    fn example_1_1() -> DataPlacement {
        let mut p = DataPlacement::new(3);
        p.add_item(s(0), &[s(1), s(2)]);
        p.add_item(s(1), &[s(2)]);
        p
    }

    fn example_4_1() -> DataPlacement {
        let mut p = DataPlacement::new(2);
        p.add_item(s(0), &[s(1)]);
        p.add_item(s(1), &[s(0)]);
        p
    }

    #[test]
    fn clean_scenarios_lint_clean() {
        for proto in [
            LintProtocol::DagWt,
            LintProtocol::DagT,
            LintProtocol::BackEdge,
            LintProtocol::Psl,
            LintProtocol::Eager,
            LintProtocol::NaiveLazy,
        ] {
            let diags = lint_scenario(&example_1_1(), &defaults(proto));
            assert!(diags.is_empty(), "{proto:?}: {:?}", diags);
        }
    }

    #[test]
    fn cycle_is_an_error_for_dag_protocols_only() {
        let p = example_4_1();
        for proto in [LintProtocol::DagWt, LintProtocol::DagT] {
            let diags = lint_scenario(&p, &defaults(proto));
            assert!(has_errors(&diags), "{proto:?}");
            let d = &diags[0];
            assert_eq!(d.code, "RA001");
            match &d.witness {
                Witness::Cycle(c) => assert_eq!(c.len(), 2),
                w => panic!("wrong witness {w:?}"),
            }
        }
        for proto in [LintProtocol::BackEdge, LintProtocol::Psl, LintProtocol::NaiveLazy] {
            let diags = lint_scenario(&p, &defaults(proto));
            assert!(!has_errors(&diags), "{proto:?}: {:?}", diags);
        }
    }

    #[test]
    fn find_cycle_returns_a_real_cycle() {
        let mut g = CopyGraph::empty(4);
        g.add_edge(s(0), s(1), 1);
        g.add_edge(s(1), s(2), 1);
        g.add_edge(s(2), s(1), 1);
        g.add_edge(s(2), s(3), 1);
        let cycle = find_cycle(&g).expect("cycle exists");
        // Each consecutive pair (and the closing pair) must be a real edge.
        for w in cycle.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "{cycle:?}");
        }
        assert!(g.has_edge(*cycle.last().unwrap(), cycle[0]), "{cycle:?}");
        assert!(find_cycle(&CopyGraph::empty(3)).is_none());
    }

    #[test]
    fn corrupted_tree_flagged_with_edge_witness() {
        let g = CopyGraph::from_placement(&example_1_1());
        let tree = PropagationTree::chain(&g).unwrap();
        let constraints = vec![(s(0), s(1)), (s(2), s(0))]; // second is violated
        let diags = check_tree(&tree, &constraints);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RA002");
        assert_eq!(diags[0].witness, Witness::Edge { from: s(2), to: s(0) });
    }

    #[test]
    fn invalid_backedge_set_is_an_error() {
        let g = CopyGraph::from_placement(&example_4_1());
        let empty = BackEdgeSet::from_edges(Vec::new());
        let diags = check_backedge_set(&g, &empty);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RA004");
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn non_minimal_backedge_set_is_a_warning() {
        // 0 <-> 1 plus 2 -> 0; {1->0, 2->0} is valid but 2->0 is redundant.
        let mut g = CopyGraph::empty(3);
        g.add_edge(s(0), s(1), 1);
        g.add_edge(s(1), s(0), 1);
        g.add_edge(s(2), s(0), 1);
        let set = BackEdgeSet::from_edges(vec![(s(1), s(0)), (s(2), s(0))]);
        let diags = check_backedge_set(&g, &set);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RA003");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert_eq!(diags[0].witness, Witness::Edge { from: s(2), to: s(0) });
    }

    #[test]
    fn stranded_replica_is_an_error() {
        // Tree: 0 -> 1 -> 2 but an item primaried at 2 with a replica at 0:
        // 0 is not a descendant of 2.
        let g = CopyGraph::from_placement(&example_1_1());
        let tree = PropagationTree::chain(&g).unwrap();
        let mut p = example_1_1();
        p.add_item(s(2), &[s(0)]);
        let diags = check_replica_reachability(&p, &tree, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RA005");
    }

    #[test]
    fn dag_t_site_order_violation() {
        // Acyclic but 1 -> 0 points to a lower id.
        let mut p = DataPlacement::new(2);
        p.add_item(s(1), &[s(0)]);
        let diags = lint_scenario(&p, &defaults(LintProtocol::DagT));
        assert!(diags.iter().any(|d| d.code == "RA009" && d.severity == Severity::Error));
    }

    #[test]
    fn crash_faults_rejected_for_eager_protocols_only() {
        for proto in [LintProtocol::BackEdge, LintProtocol::Eager] {
            let mut cfg = defaults(proto);
            cfg.crash_faults = true;
            let diags = lint_scenario(&example_1_1(), &cfg);
            assert!(
                diags.iter().any(|d| d.code == "RA010" && d.severity == Severity::Error),
                "{proto:?}: {diags:?}"
            );
            // Without crashes the same protocols lint clean.
            assert!(lint_scenario(&example_1_1(), &defaults(proto)).is_empty());
        }
        for proto in
            [LintProtocol::DagWt, LintProtocol::DagT, LintProtocol::NaiveLazy, LintProtocol::Psl]
        {
            let mut cfg = defaults(proto);
            cfg.crash_faults = true;
            let diags = lint_scenario(&example_1_1(), &cfg);
            assert!(!diags.iter().any(|d| d.code == "RA010"), "{proto:?}: {diags:?}");
        }
    }

    #[test]
    fn timing_warnings_fire() {
        let mut cfg = defaults(LintProtocol::DagT);
        cfg.epoch_period_us = 100;
        cfg.network_latency_us = 100_000;
        cfg.deadlock_timeout_us = 50_000;
        cfg.retry_backoff_us = 60_000;
        let diags = check_timing(&cfg);
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["RA006", "RA007", "RA008"]);
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn address_map_lint_accepts_well_formed_map() {
        let map: AddressMap = (0..3).map(|i| (s(i), format!("127.0.0.1:710{i}"))).collect();
        assert!(check_address_map(&map, 3).is_empty());
    }

    #[test]
    fn address_map_lint_rejects_malformed_maps() {
        let full = |n: u32| -> AddressMap {
            (0..n).map(|i| (s(i), format!("127.0.0.1:710{i}"))).collect()
        };
        // Duplicate site id.
        let mut map = full(2);
        map.insert(s(1), "127.0.0.1:7199".to_string());
        assert!(check_address_map(&map, 2)
            .iter()
            .any(|d| d.code == "RA011" && d.message.contains("multiple addresses")));
        // Out-of-range site id.
        let mut map = full(2);
        map.insert(s(9), "127.0.0.1:7109".to_string());
        assert!(check_address_map(&map, 2)
            .iter()
            .any(|d| d.code == "RA011" && d.message.contains("only 2 sites")));
        // Missing peer.
        let map: AddressMap = [(s(0), "127.0.0.1:7100".to_string())].into_iter().collect();
        assert!(check_address_map(&map, 2)
            .iter()
            .any(|d| d.code == "RA011" && d.message.contains("no address")));
        // Shared address (self-dial).
        let map: AddressMap =
            [(s(0), "127.0.0.1:7100".to_string()), (s(1), "127.0.0.1:7100".to_string())]
                .into_iter()
                .collect();
        let diags = check_address_map(&map, 2);
        assert!(diags
            .iter()
            .any(|d| d.code == "RA011" && matches!(d.witness, Witness::Edge { .. })));
        // Malformed host:port.
        for bad in ["localhost", ":7100", "host:", "host:notaport", "host:99999"] {
            let mut map = full(2);
            map.insert(s(1), bad.to_string());
            // The duplicate entry for site 1 also fires; look only for the
            // host:port message.
            assert!(
                check_address_map(&map, 2)
                    .iter()
                    .any(|d| d.code == "RA011" && d.message.contains("host:port")),
                "{bad:?} accepted"
            );
        }
        assert!(has_errors(&check_address_map(&full(1), 2)));
    }
}
