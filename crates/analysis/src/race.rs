//! Happens-before race detection over runtime traces.
//!
//! The threaded deployment (`repl-runtime`) is supposed to confine every
//! store to its site thread and order all cross-thread effects through
//! channels and the lock table. This module checks that claim
//! independently, ThreadSanitizer-style: replay a trace recorded by
//! `repl_types::trace` (lock acquire/release, channel send/recv, store
//! slot accesses), maintain a vector clock per thread, and report every
//! pair of conflicting slot accesses that no happens-before path orders
//! (code `RC001`).
//!
//! Happens-before edges:
//!
//! * **program order** — events of one thread, in recorded order;
//! * **lock order** — a release of item `x` in scope `S` synchronizes
//!   with every later acquire of `x` in `S` (the release's clock is
//!   joined into a per-`(scope, item)` lock clock; acquires join that
//!   clock into the acquiring thread);
//! * **channel order** — a send of sequence number `q` on channel `c`
//!   synchronizes with the recv of `(c, q)`.
//!
//! Per slot the detector keeps each thread's *last* read and write
//! stamp (FastTrack-style pruning). Dropping older same-thread accesses
//! is sound for detection: an older access by thread `t` is ordered
//! before `t`'s newer one, so if the older access races with some
//! access `e`, then either the newer one also races with `e` or `e` is
//! ordered between the two — impossible, since that would order the
//! older access before `e`.

use std::collections::HashMap;

use repl_types::trace::{TimedEvent, TraceEvent};
use repl_types::{ItemId, TxnId};

use crate::diag::{Diagnostic, Witness};

/// A vector clock over dense thread indices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, thread: u32) -> u64 {
        self.0.get(thread as usize).copied().unwrap_or(0)
    }

    fn tick(&mut self, thread: u32) {
        let i = thread as usize;
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }
}

/// One remembered access to a slot: enough to decide ordering against a
/// later access and to describe the pair in a diagnostic.
#[derive(Clone, Debug)]
struct Stamp {
    thread: u32,
    txn: TxnId,
    /// The accessing thread's own clock component at access time.
    at: u64,
}

#[derive(Debug, Default)]
struct SlotState {
    /// Last write per thread.
    writes: Vec<Stamp>,
    /// Last read per thread.
    reads: Vec<Stamp>,
}

fn remember(list: &mut Vec<Stamp>, stamp: Stamp) {
    match list.iter_mut().find(|s| s.thread == stamp.thread) {
        Some(slot) => *slot = stamp,
        None => list.push(stamp),
    }
}

/// Replay `events` and report every unordered conflicting access pair.
///
/// Events must be in recorded (global log) order — `trace::take()`
/// returns them that way. Each racing pair is reported once, as an
/// error-severity `RC001` diagnostic whose witness names the scope, the
/// item and both accesses.
pub fn detect_races(events: &[TimedEvent]) -> Vec<Diagnostic> {
    let mut threads: Vec<VClock> = Vec::new();
    let mut locks: HashMap<(u64, ItemId), VClock> = HashMap::new();
    let mut channels: HashMap<(u64, u64), VClock> = HashMap::new();
    let mut slots: HashMap<(u64, ItemId), SlotState> = HashMap::new();
    let mut diags = Vec::new();

    let clock_of = |threads: &mut Vec<VClock>, t: u32| {
        if threads.len() <= t as usize {
            threads.resize(t as usize + 1, VClock::default());
        }
        t as usize
    };

    for ev in events {
        let t = ev.thread;
        let ti = clock_of(&mut threads, t);
        match ev.event {
            TraceEvent::LockAcquire { scope, item, .. } => {
                if let Some(lock_clock) = locks.get(&(scope, item)) {
                    let lock_clock = lock_clock.clone();
                    threads[ti].join(&lock_clock);
                }
            }
            TraceEvent::LockRelease { scope, item, .. } => {
                // Tick first so the release itself is ordered before
                // anything that observes it.
                threads[ti].tick(t);
                let entry = locks.entry((scope, item)).or_default();
                entry.join(&threads[ti]);
            }
            TraceEvent::ChanSend { channel, seq } => {
                threads[ti].tick(t);
                channels.insert((channel, seq), threads[ti].clone());
            }
            TraceEvent::ChanRecv { channel, seq } => {
                if let Some(sent) = channels.remove(&(channel, seq)) {
                    threads[ti].join(&sent);
                }
            }
            TraceEvent::Access { scope, item, txn, write } => {
                threads[ti].tick(t);
                let now = threads[ti].clone();
                let slot = slots.entry((scope, item)).or_default();
                let stamp = Stamp { thread: t, txn, at: now.get(t) };

                // A prior access races with this one iff it conflicts
                // (at least one side writes), came from another thread,
                // and its stamp is not covered by our clock.
                let mut report = |prior: &Stamp, prior_write: bool| {
                    if prior.thread != t && prior.at > now.get(prior.thread) {
                        diags.push(race_diag(scope, item, prior, prior_write, &stamp, write));
                    }
                };
                for prior in &slot.writes {
                    report(prior, true);
                }
                if write {
                    for prior in &slot.reads {
                        report(prior, false);
                    }
                }

                if write {
                    remember(&mut slot.writes, stamp);
                } else {
                    remember(&mut slot.reads, stamp);
                }
            }
        }
    }
    diags
}

fn race_diag(
    scope: u64,
    item: ItemId,
    prior: &Stamp,
    prior_write: bool,
    current: &Stamp,
    current_write: bool,
) -> Diagnostic {
    let kind = |w: bool| if w { "write" } else { "read" };
    Diagnostic::error(
        "RC001",
        format!(
            "data race on {item} (store scope {scope}): {} by thread {} ({}) and {} by \
             thread {} ({}) are unordered by happens-before",
            kind(prior_write),
            prior.thread,
            fmt_txn(prior.txn),
            kind(current_write),
            current.thread,
            fmt_txn(current.txn),
        ),
        Witness::RacePair {
            scope,
            item,
            first: (prior.thread, prior.txn, prior_write),
            second: (current.thread, current.txn, current_write),
        },
    )
}

fn fmt_txn(txn: TxnId) -> String {
    if txn == repl_types::trace::NO_TXN {
        "unlocked peek".to_owned()
    } else {
        format!("{txn:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_types::trace::NO_TXN;
    use repl_types::SiteId;

    const SCOPE: u64 = 7;
    const X: ItemId = ItemId(1);

    fn txn(n: u64) -> TxnId {
        let _ = SiteId(0);
        TxnId(n)
    }

    fn ev(thread: u32, event: TraceEvent) -> TimedEvent {
        TimedEvent { thread, event }
    }

    fn acquire(thread: u32, t: TxnId) -> TimedEvent {
        ev(thread, TraceEvent::LockAcquire { scope: SCOPE, item: X, txn: t, exclusive: true })
    }

    fn release(thread: u32, t: TxnId) -> TimedEvent {
        ev(thread, TraceEvent::LockRelease { scope: SCOPE, item: X, txn: t })
    }

    fn access(thread: u32, t: TxnId, write: bool) -> TimedEvent {
        ev(thread, TraceEvent::Access { scope: SCOPE, item: X, txn: t, write })
    }

    #[test]
    fn lock_ordered_writes_do_not_race() {
        let events = vec![
            acquire(0, txn(1)),
            access(0, txn(1), true),
            release(0, txn(1)),
            acquire(1, txn(2)),
            access(1, txn(2), true),
            release(1, txn(2)),
        ];
        assert!(detect_races(&events).is_empty());
    }

    #[test]
    fn unlocked_write_after_release_races() {
        // Thread 0 writes again *after* releasing — classic broken
        // discipline. Thread 1's locked write is unordered with it.
        let events = vec![
            acquire(0, txn(1)),
            access(0, txn(1), true),
            release(0, txn(1)),
            acquire(1, txn(2)),
            access(1, txn(2), true),
            access(0, txn(1), true), // late, no lock
            release(1, txn(2)),
        ];
        let diags = detect_races(&events);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "RC001");
        match &diags[0].witness {
            Witness::RacePair { item, first, second, .. } => {
                assert_eq!(*item, X);
                assert_eq!(first.0, 1);
                assert_eq!(second.0, 0);
            }
            w => panic!("wrong witness {w:?}"),
        }
    }

    #[test]
    fn concurrent_reads_do_not_race() {
        let events = vec![access(0, NO_TXN, false), access(1, NO_TXN, false)];
        assert!(detect_races(&events).is_empty());
    }

    #[test]
    fn unlocked_peek_against_writer_races() {
        let events = vec![
            acquire(0, txn(1)),
            access(0, txn(1), true),
            access(1, NO_TXN, false), // peek, no lock
            release(0, txn(1)),
        ];
        let diags = detect_races(&events);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("unlocked peek"), "{}", diags[0].message);
    }

    #[test]
    fn channel_edge_orders_cross_thread_accesses() {
        let chan = 3;
        let ordered = vec![
            access(0, txn(1), true),
            ev(0, TraceEvent::ChanSend { channel: chan, seq: 0 }),
            ev(1, TraceEvent::ChanRecv { channel: chan, seq: 0 }),
            access(1, txn(2), true),
        ];
        assert!(detect_races(&ordered).is_empty());

        // Without the recv edge the same accesses race.
        let unordered = vec![access(0, txn(1), true), access(1, txn(2), true)];
        assert_eq!(detect_races(&unordered).len(), 1);
    }

    #[test]
    fn distinct_items_never_conflict() {
        let events = vec![
            ev(0, TraceEvent::Access { scope: SCOPE, item: ItemId(1), txn: txn(1), write: true }),
            ev(1, TraceEvent::Access { scope: SCOPE, item: ItemId(2), txn: txn(2), write: true }),
        ];
        assert!(detect_races(&events).is_empty());
    }

    #[test]
    fn same_item_different_scopes_never_conflict() {
        let events = vec![
            ev(0, TraceEvent::Access { scope: 1, item: X, txn: txn(1), write: true }),
            ev(1, TraceEvent::Access { scope: 2, item: X, txn: txn(2), write: true }),
        ];
        assert!(detect_races(&events).is_empty());
    }
}
