//! Diagnostic records shared by every analysis pass.
//!
//! A [`Diagnostic`] carries a stable code (`RA…` for configuration lints,
//! `RC…` for race reports, `RL…` for the source determinism lint, `MC…`
//! for model-checker violations), a
//! severity, a human-readable message and a machine-readable
//! [`Witness`] — the concrete structure that proves the finding (a cycle,
//! an edge, a pair of unordered accesses). Diagnostics serialize to JSON
//! via the workspace `serde` so harnesses can archive them next to run
//! results.

use serde::Serialize;

use repl_types::{ItemId, SiteId, TxnId};

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Suspicious but runnable: the simulation proceeds, the configuration
    /// deserves a second look (e.g. an epoch period shorter than the
    /// network latency).
    Warning,
    /// The configuration violates a protocol precondition; running it
    /// would produce wrong or meaningless results. Callers fail fast.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The structure that substantiates a diagnostic.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum Witness {
    /// No structural witness (timing lints, source lints).
    None,
    /// A cycle through these sites, in order (closing edge implied).
    Cycle(Vec<SiteId>),
    /// A single offending copy-graph or tree edge.
    Edge {
        /// Edge source.
        from: SiteId,
        /// Edge target.
        to: SiteId,
    },
    /// A replica placement that the propagation structure cannot serve.
    Replica {
        /// The item whose copy is stranded.
        item: ItemId,
        /// The item's primary site.
        primary: SiteId,
        /// The unreachable replica site.
        replica: SiteId,
    },
    /// A timing parameter out of range with respect to its bound.
    Timing {
        /// The configured value, in microseconds.
        value_us: u64,
        /// The bound it violates, in microseconds.
        bound_us: u64,
    },
    /// A source location (determinism lint).
    Source {
        /// Path of the offending file.
        file: String,
        /// 1-based line number.
        line: u32,
        /// The offending source line, trimmed.
        text: String,
    },
    /// A model-checker counterexample: the (shrunk) scheduler trace that
    /// reproduces the violation, one rendered action per step. Replaying
    /// the steps in order from the scenario's initial state reaches the
    /// violating state.
    McTrace {
        /// Rendered scheduler actions, in execution order.
        steps: Vec<String>,
    },
    /// Two conflicting slot accesses with no happens-before order.
    RacePair {
        /// Store scope the slot belongs to.
        scope: u64,
        /// The item both accesses touch.
        item: ItemId,
        /// First access: (thread index, transaction, is-write).
        first: (u32, TxnId, bool),
        /// Second access: (thread index, transaction, is-write).
        second: (u32, TxnId, bool),
    },
}

/// One finding from an analysis pass.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Finding severity.
    pub severity: Severity,
    /// Stable diagnostic code (`RA001`, `RC001`, `RL002`, …).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Machine-readable evidence.
    pub witness: Witness,
}

impl Diagnostic {
    /// Construct an error-severity diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>, witness: Witness) -> Self {
        Diagnostic { severity: Severity::Error, code, message: message.into(), witness }
    }

    /// Construct a warning-severity diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>, witness: Witness) -> Self {
        Diagnostic { severity: Severity::Warning, code, message: message.into(), witness }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// True if any diagnostic in `diags` is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Render a diagnostic list as one line per finding.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!("{d}\n"));
        match &d.witness {
            Witness::None => {}
            w => out.push_str(&format!("    witness: {w:?}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_above_warning() {
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn diagnostics_serialize_to_json() {
        let d = Diagnostic::error(
            "RA001",
            "cycle in copy graph",
            Witness::Cycle(vec![SiteId(0), SiteId(1)]),
        );
        let json = serde::to_json(&d);
        assert!(json.contains("\"RA001\""), "{json}");
        assert!(json.contains("Cycle"), "{json}");
    }

    #[test]
    fn render_includes_witness() {
        let d = Diagnostic::warning(
            "RA006",
            "epoch too short",
            Witness::Timing { value_us: 10, bound_us: 150 },
        );
        let text = render(&[d]);
        assert!(text.contains("warning[RA006]"), "{text}");
        assert!(text.contains("value_us: 10"), "{text}");
    }
}
