//! Multiversion history recording and the one-copy-serializability oracle.
//!
//! Every committed *logical* transaction is recorded with:
//!
//! * its reads — `(item, writer-of-the-version-read)`, where the writer is
//!   the [`GlobalTxnId`] tag the storage engine keeps on every copy (a
//!   replica read therefore resolves to the same logical version as a
//!   primary read);
//! * its writes — the distinct items it updated. Since a transaction may
//!   only update items whose primary copy is local (§1.1), all writes to
//!   an item are serialized by the primary site's strict 2PL, and the
//!   order in which commits reach the history **is** the version order.
//!
//! The checker builds the serialization graph over logical items:
//!
//! * `ww`: consecutive writers of each item;
//! * `wr`: version writer → each reader of that version;
//! * `rw`: reader of version *k* → writer of version *k+1*;
//!
//! and hunts for a cycle. Acyclicity of this graph is exactly one-copy
//! conflict-serializability for histories with a total write order per
//! item. Theorems 2.1 and 3.1 say DAG(WT)/DAG(T) histories always pass;
//! Example 1.1 shows the indiscriminate protocol can fail — both are
//! exercised in this workspace's test suites.

use std::collections::HashMap;

use repl_types::{GlobalTxnId, ItemId};

/// A committed logical transaction as the checker sees it.
#[derive(Clone, Debug)]
pub struct CommittedTxn {
    /// The transaction's global id.
    pub gid: GlobalTxnId,
    /// `(item, writer of the version read)`; `None` = initial version.
    pub reads: Vec<(ItemId, Option<GlobalTxnId>)>,
    /// Distinct items written.
    pub writes: Vec<ItemId>,
}

/// The recorded multiversion history of one simulation run.
#[derive(Default, Debug)]
pub struct History {
    txns: Vec<CommittedTxn>,
    index_of: HashMap<GlobalTxnId, usize>,
    /// item → writers in version order (version k+1 = writers[k]).
    writers: HashMap<ItemId, Vec<GlobalTxnId>>,
    /// (writer, item) → version sequence number (1-based; 0 = initial).
    version_of: HashMap<(GlobalTxnId, ItemId), u64>,
}

/// A serializability violation: a cycle in the serialization graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SerializationCycle {
    /// The transactions on the cycle, in order.
    pub cycle: Vec<GlobalTxnId>,
}

impl std::fmt::Display for SerializationCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serialization cycle:")?;
        for gid in &self.cycle {
            write!(f, " {gid} →")?;
        }
        write!(f, " {}", self.cycle[0])
    }
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the commit of a logical transaction. `writes` lists the
    /// distinct items written; version order per item follows record
    /// order (which the engine guarantees equals primary commit order).
    pub fn record_commit(
        &mut self,
        gid: GlobalTxnId,
        reads: Vec<(ItemId, Option<GlobalTxnId>)>,
        writes: Vec<ItemId>,
    ) {
        debug_assert!(!self.index_of.contains_key(&gid), "transaction {gid} committed twice");
        for &item in &writes {
            let list = self.writers.entry(item).or_default();
            list.push(gid);
            self.version_of.insert((gid, item), list.len() as u64);
        }
        self.index_of.insert(gid, self.txns.len());
        self.txns.push(CommittedTxn { gid, reads, writes });
    }

    /// Number of committed transactions recorded.
    pub fn committed_count(&self) -> usize {
        self.txns.len()
    }

    /// The recorded transactions.
    pub fn txns(&self) -> &[CommittedTxn] {
        &self.txns
    }

    /// Total number of versions installed across all items.
    pub fn version_count(&self) -> usize {
        // Order-insensitive sum. // replint: allow(hash-iter)
        self.writers.values().map(Vec::len).sum()
    }

    /// Build the serialization graph and search for a cycle.
    ///
    /// Returns `Ok(())` when the history is (one-copy) serializable, and a
    /// witness cycle otherwise.
    pub fn check_serializability(&self) -> Result<(), SerializationCycle> {
        let n = self.txns.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let push_edge = |from: usize, to: usize, adj: &mut Vec<Vec<u32>>| {
            if from != to {
                adj[from].push(to as u32);
            }
        };

        // ww edges. Per-item edge sets are independent, so the graph (and
        // the cycle verdict) does not depend on the iteration order.
        // replint: allow(hash-iter)
        for writers in self.writers.values() {
            for w in writers.windows(2) {
                push_edge(self.index_of[&w[0]], self.index_of[&w[1]], &mut adj);
            }
        }
        // wr and rw edges.
        for (reader_idx, txn) in self.txns.iter().enumerate() {
            for &(item, writer) in &txn.reads {
                let version = match writer {
                    Some(w) => {
                        if w != txn.gid {
                            // wr: the version's writer precedes the reader.
                            // A read may observe a writer whose commit was
                            // recorded, by construction of the engine.
                            let widx = *self
                                .index_of
                                .get(&w)
                                .unwrap_or_else(|| panic!("read from unrecorded writer {w}"));
                            push_edge(widx, reader_idx, &mut adj);
                        }
                        self.version_of[&(w, item)]
                    }
                    None => 0,
                };
                // rw: the reader precedes the writer of the next version.
                if let Some(writers) = self.writers.get(&item) {
                    if let Some(next) = writers.get(version as usize) {
                        if *next != txn.gid {
                            push_edge(reader_idx, self.index_of[next], &mut adj);
                        }
                    }
                }
            }
        }

        // Iterative coloured DFS for a cycle.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color = vec![Color::White; n];
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            let mut path = vec![start];
            color[start] = Color::Grey;
            while let Some(&mut (node, ref mut ei)) = stack.last_mut() {
                if *ei < adj[node].len() {
                    let next = adj[node][*ei] as usize;
                    *ei += 1;
                    match color[next] {
                        Color::Grey => {
                            let pos = path.iter().position(|&x| x == next).unwrap();
                            return Err(SerializationCycle {
                                cycle: path[pos..].iter().map(|&i| self.txns[i].gid).collect(),
                            });
                        }
                        Color::White => {
                            color[next] = Color::Grey;
                            stack.push((next, 0));
                            path.push(next);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[node] = Color::Black;
                    stack.pop();
                    path.pop();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_types::SiteId;

    fn gid(site: u32, seq: u64) -> GlobalTxnId {
        GlobalTxnId::new(SiteId(site), seq)
    }
    fn i(n: u32) -> ItemId {
        ItemId(n)
    }

    #[test]
    fn empty_history_is_serializable() {
        assert!(History::new().check_serializability().is_ok());
    }

    #[test]
    fn linear_history_is_serializable() {
        let mut h = History::new();
        let t1 = gid(0, 1);
        let t2 = gid(1, 1);
        h.record_commit(t1, vec![], vec![i(0)]);
        h.record_commit(t2, vec![(i(0), Some(t1))], vec![i(1)]);
        assert_eq!(h.committed_count(), 2);
        assert_eq!(h.version_count(), 2);
        assert!(h.check_serializability().is_ok());
    }

    #[test]
    fn example_1_1_anomaly_is_caught() {
        // T1 writes a. T2 reads a's NEW version (at s2) and writes b.
        // T3 (at s3) reads the OLD (initial) version of a and the NEW b:
        // T1 → T2 (wr on a), T2 → T3 (wr on b), T3 → T1 (rw on a). Cycle.
        let mut h = History::new();
        let t1 = gid(0, 1);
        let t2 = gid(1, 1);
        let t3 = gid(2, 1);
        h.record_commit(t1, vec![], vec![i(0)]);
        h.record_commit(t2, vec![(i(0), Some(t1))], vec![i(1)]);
        h.record_commit(t3, vec![(i(0), None), (i(1), Some(t2))], vec![]);
        let err = h.check_serializability().unwrap_err();
        assert_eq!(err.cycle.len(), 3);
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn example_4_1_anomaly_is_caught() {
        // T1 reads b(initial), writes a; T2 reads a(initial), writes b.
        // rw(a): T2 → T1; rw(b): T1 → T2. Cycle of length 2.
        let mut h = History::new();
        let t1 = gid(0, 1);
        let t2 = gid(1, 1);
        h.record_commit(t1, vec![(i(1), None)], vec![i(0)]);
        h.record_commit(t2, vec![(i(0), None)], vec![i(1)]);
        let err = h.check_serializability().unwrap_err();
        assert_eq!(err.cycle.len(), 2);
    }

    #[test]
    fn reading_own_write_is_fine() {
        let mut h = History::new();
        let t1 = gid(0, 1);
        h.record_commit(t1, vec![(i(0), Some(t1))], vec![i(0)]);
        assert!(h.check_serializability().is_ok());
    }

    #[test]
    fn ww_order_alone_can_cycle_with_reads() {
        // T1 writes x then T2 writes x; T1 later reads y written by T2:
        // ww: T1 → T2; wr: T2 → T1 — cycle.
        let mut h = History::new();
        let t1 = gid(0, 1);
        let t2 = gid(0, 2);
        // record T1's commit AFTER t2 wrote? The engine records in commit
        // order; here we force the anomaly directly:
        h.record_commit(t2, vec![], vec![i(1)]); // T2 writes y (v1)
        h.record_commit(t1, vec![(i(1), Some(t2))], vec![i(0)]); // T1 reads y, writes x
        h.record_commit(gid(0, 3), vec![(i(0), Some(t1))], vec![]);
        assert!(h.check_serializability().is_ok());
    }

    #[test]
    fn stale_replica_read_creates_rw_edge() {
        // T1 writes x (v1). T2 writes x (v2). T3 reads x = v1 (stale
        // replica): rw edge T3 → T2, plus wr T1 → T3. Still acyclic.
        let mut h = History::new();
        let t1 = gid(0, 1);
        let t2 = gid(0, 2);
        let t3 = gid(1, 1);
        h.record_commit(t1, vec![], vec![i(0)]);
        h.record_commit(t2, vec![], vec![i(0)]);
        h.record_commit(t3, vec![(i(0), Some(t1))], vec![]);
        assert!(h.check_serializability().is_ok());
    }

    #[test]
    fn lost_update_style_cycle() {
        // Both T1 and T2 read initial x, both write x: rw T1→T2 (T1 read
        // v0, T2 wrote v2?) — construct: T1 reads x0 writes x (v1);
        // T2 reads x0 writes x (v2). T2's read of v0 → rw edge to writer
        // of v1 = T1; ww T1 → T2; T1's read of v0 → rw to T1? self, no —
        // to writer of v1 = itself, skipped; so edges: T2→T1 (rw), T1→T2
        // (ww). Cycle.
        let mut h = History::new();
        let t1 = gid(0, 1);
        let t2 = gid(1, 1);
        h.record_commit(t1, vec![(i(0), None)], vec![i(0)]);
        h.record_commit(t2, vec![(i(0), None)], vec![i(0)]);
        assert!(h.check_serializability().is_err());
    }
}
