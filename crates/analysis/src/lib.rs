//! Static and dynamic analyses for the replication suite.
//!
//! Three independent passes, one diagnostic vocabulary ([`Diagnostic`]):
//!
//! 1. **Configuration linter** ([`lint`]) — checks a data placement, its
//!    copy graph, and the run's timing parameters against the protocol
//!    preconditions of Breitbart et al. *before* any simulation runs
//!    (codes `RA001`–`RA009`). The engine and every bench binary call
//!    [`lint::lint_scenario`] and fail fast on errors.
//! 2. **Race detector** ([`race`]) — replays a `repl_types::trace` event
//!    log with vector clocks and reports conflicting store-slot accesses
//!    unordered by happens-before (code `RC001`). An independent check on
//!    the threaded DAG(WT) deployment's thread-confinement discipline.
//! 3. **Determinism lint** ([`detlint`], `replint` binary) — a source
//!    scanner that rejects wall-clock reads, ambient randomness and
//!    hash-order iteration in the simulator crates (codes `RL001`–`RL004`),
//!    keeping runs reproducible from their seeds.

pub mod detlint;
pub mod diag;
pub mod lint;
pub mod race;

pub use diag::{has_errors, render, Diagnostic, Severity, Witness};
pub use lint::{check_address_map, lint_scenario, LintConfig, LintProtocol, LintTree};
pub use race::detect_races;
