//! Static and dynamic analyses for the replication suite.
//!
//! Three independent passes, one diagnostic vocabulary ([`Diagnostic`]):
//!
//! 1. **Configuration linter** ([`lint`]) — checks a data placement, its
//!    copy graph, and the run's timing parameters against the protocol
//!    preconditions of Breitbart et al. *before* any simulation runs
//!    (codes `RA001`–`RA009`). The engine and every bench binary call
//!    [`lint::lint_scenario`] and fail fast on errors.
//! 2. **Race detector** ([`race`]) — replays a `repl_types::trace` event
//!    log with vector clocks and reports conflicting store-slot accesses
//!    unordered by happens-before (code `RC001`). An independent check on
//!    the threaded DAG(WT) deployment's thread-confinement discipline.
//! 3. **Determinism lint** ([`detlint`], `replint` binary) — a source
//!    scanner that rejects wall-clock reads, ambient randomness and
//!    hash-order iteration in the simulator crates (codes `RL001`–`RL004`),
//!    forbids panicking calls in the long-running runtime crates
//!    (`RL008`), and warns on stale suppressions (`RL000`), keeping runs
//!    reproducible from their seeds.
//! 4. **Model checker** ([`mc`], `replmc` binary) — a stateless DFS
//!    explorer that drives the sans-I/O `SiteMachine`s through *every*
//!    interleaving of deliverable inputs for bounded workloads, with
//!    sleep-set pruning and state-fingerprint dedup, and checks
//!    convergence, one-copy serializability, link FIFO discipline, epoch
//!    monotonicity and crash silence (codes `MC001`–`MC006`). The
//!    serializability oracle reuses [`history::History`], which lives
//!    here (re-exported by `repl-core`) so both the engine and the model
//!    checker can share it.

pub mod detlint;
pub mod diag;
pub mod history;
pub mod lint;
pub mod mc;
pub mod race;

pub use diag::{has_errors, render, Diagnostic, Severity, Witness};
pub use history::History;
pub use lint::{check_address_map, lint_scenario, LintConfig, LintProtocol, LintTree};
pub use race::detect_races;
