//! The determinism lint: a line-oriented source scanner.
//!
//! Simulation results must be a pure function of their seeds; the paper's
//! experiments are only reproducible if no wall-clock time, ambient
//! randomness, or hash-order iteration leaks into the simulator. The
//! `replint` binary runs these rules over `crates/sim`, `crates/core` and
//! `crates/copygraph`:
//!
//! | code  | rejects |
//! |-------|---------|
//! | RL001 | `SystemTime::now` |
//! | RL002 | `Instant::now` |
//! | RL003 | `thread_rng` / `rand::rng()` (ambient, unseeded RNGs) |
//! | RL004 | iteration over a `HashMap`/`HashSet` binding (unordered) |
//! | RL005 | entropy-seeded RNG construction (`from_entropy`, `from_os_rng`, `OsRng`, `getrandom`) |
//! | RL006 | blocking network I/O (`std::net`, `TcpStream`, `TcpListener`, `UdpSocket`) |
//! | RL007 | any I/O, threading, or clock import inside `crates/protocol` |
//!
//! RL006 keeps real sockets out of the deterministic layers: the
//! simulator models the network in virtual time, so any code under
//! `crates/sim`, `crates/core` or `crates/copygraph` that touches
//! `std::net` both blocks on real I/O and injects wall-clock timing into
//! results. Socket code belongs in `repl-net`/`repl-runtime`.
//!
//! RL007 enforces the sans-I/O contract of `repl-protocol`: the crate is
//! the single propagation state machine shared by the simulator and the
//! live runtime, and it stays shareable only while it owns no clocks,
//! threads, channels, or sockets. Files whose path lies under
//! `crates/protocol` may not mention `std::thread`, `std::time`,
//! `std::net`, or `crossbeam` — drivers own all of those.
//!
//! RL004 is a heuristic: the scanner collects names declared with a
//! `HashMap<…>`/`HashSet<…>` type ascription in the same file and flags
//! `.iter()`, `.keys()`, `.values()`, `.drain()`, `.into_iter()` calls on
//! those names as well as `for … in &name` loops. A deliberate unordered
//! iteration (e.g. one whose results are re-sorted) is silenced with
//! `// replint: allow(hash-iter)` on the same line or the line above.
//! Comment-only lines are never flagged.

use crate::diag::{Diagnostic, Witness};

const ALLOW_HASH_ITER: &str = "replint: allow(hash-iter)";

/// Scan one source file; `path_label` is used verbatim in witnesses.
pub fn scan_file(path_label: &str, src: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let hash_names = collect_hash_bindings(src);
    let sans_io = path_label.contains("crates/protocol");
    let mut prev_allows = false;

    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx as u32 + 1;
        let allowed = prev_allows || raw.contains(ALLOW_HASH_ITER);
        prev_allows = raw.contains(ALLOW_HASH_ITER);
        if line.starts_with("//") {
            continue;
        }
        let code_part = strip_line_comment(raw);

        if code_part.contains("SystemTime::now") {
            diags.push(source_diag(
                "RL001",
                "wall-clock read: SystemTime::now is not a function of the seed",
                path_label,
                lineno,
                line,
            ));
        }
        if code_part.contains("Instant::now") {
            diags.push(source_diag(
                "RL002",
                "wall-clock read: Instant::now is not a function of the seed",
                path_label,
                lineno,
                line,
            ));
        }
        if code_part.contains("thread_rng") || code_part.contains("rand::rng()") {
            diags.push(source_diag(
                "RL003",
                "ambient RNG: use an explicitly seeded generator",
                path_label,
                lineno,
                line,
            ));
        }
        if code_part.contains("from_entropy")
            || code_part.contains("from_os_rng")
            || code_part.contains("OsRng")
            || code_part.contains("getrandom")
        {
            diags.push(source_diag(
                "RL005",
                "entropy-seeded RNG: OS entropy varies across runs; derive the seed \
                 from the experiment parameters instead",
                path_label,
                lineno,
                line,
            ));
        }
        for pat in ["std::net", "TcpStream", "TcpListener", "UdpSocket"] {
            if code_part.contains(pat) {
                diags.push(source_diag(
                    "RL006",
                    &format!(
                        "blocking network I/O ({pat}): real sockets have no place in \
                         the deterministic layers; put socket code in repl-net or \
                         repl-runtime"
                    ),
                    path_label,
                    lineno,
                    line,
                ));
                break;
            }
        }
        if sans_io {
            for pat in ["std::thread", "std::time", "std::net", "crossbeam"] {
                if code_part.contains(pat) {
                    diags.push(source_diag(
                        "RL007",
                        &format!(
                            "{pat} inside the sans-I/O protocol core: repl-protocol \
                             is shared by the simulator and the live runtime, so \
                             clocks, threads, channels, and sockets belong to the \
                             drivers, never the state machine"
                        ),
                        path_label,
                        lineno,
                        line,
                    ));
                    break;
                }
            }
        }
        if !allowed {
            for name in &hash_names {
                if iterates_hash_binding(code_part, name) {
                    diags.push(source_diag(
                        "RL004",
                        &format!(
                            "iteration over hash-ordered `{name}`: order varies across \
                             runs; use BTreeMap/BTreeSet, sort first, or annotate \
                             `// {ALLOW_HASH_ITER}`"
                        ),
                        path_label,
                        lineno,
                        line,
                    ));
                    break;
                }
            }
        }
    }
    diags
}

fn source_diag(code: &'static str, message: &str, file: &str, line: u32, text: &str) -> Diagnostic {
    Diagnostic::error(
        code,
        format!("{file}:{line}: {message}"),
        Witness::Source { file: file.to_owned(), line, text: text.to_owned() },
    )
}

/// Names declared in this file with an explicit `HashMap<`/`HashSet<`
/// type ascription: `name: HashMap<...>` in struct fields, lets, or
/// signatures.
fn collect_hash_bindings(src: &str) -> Vec<String> {
    let mut names = Vec::new();
    for raw in src.lines() {
        let line = strip_line_comment(raw);
        let mut rest = line;
        while let Some(colon) = rest.find(':') {
            let (before, after) = rest.split_at(colon);
            let after = &after[1..];
            let after_trim = after.trim_start();
            if after_trim.starts_with("HashMap<")
                || after_trim.starts_with("HashSet<")
                || after_trim.starts_with("std::collections::HashMap<")
                || after_trim.starts_with("std::collections::HashSet<")
            {
                if let Some(name) = trailing_ident(before) {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
            rest = after;
        }
    }
    names
}

fn trailing_ident(s: &str) -> Option<String> {
    let s = s.trim_end();
    let end = s.len();
    let start = s
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
        .map(|(i, _)| i)
        .last()?;
    let ident = &s[start..end];
    let first = ident.chars().next()?;
    if first.is_alphabetic() || first == '_' {
        Some(ident.to_owned())
    } else {
        None
    }
}

fn iterates_hash_binding(line: &str, name: &str) -> bool {
    const METHODS: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
    ];
    for m in METHODS {
        for (pos, _) in line.match_indices(&format!("{name}{m}")) {
            if !ident_continues_left(line, pos) {
                return true;
            }
        }
        // also `self.name.iter()` style
        if line.contains(&format!(".{name}{m}")) {
            return true;
        }
    }
    for pat in [format!("in &{name}"), format!("in &mut {name}"), format!("in {name} ")] {
        for (pos, _) in line.match_indices(&pat) {
            let after = pos + pat.len();
            if !ident_continues_right(line, after) {
                return true;
            }
        }
    }
    false
}

fn ident_continues_left(line: &str, pos: usize) -> bool {
    line[..pos].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.')
}

fn ident_continues_right(line: &str, pos: usize) -> bool {
    line[pos..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Strip a trailing `// …` comment, ignoring `//` inside string literals
/// (a cheap scan: tracks double-quote parity).
fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' if i == 0 || bytes[i - 1] != b'\\' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<&'static str> {
        scan_file("test.rs", src).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn flags_wall_clock_and_rng() {
        let src = "let t = SystemTime::now();\nlet i = Instant::now();\nlet r = rand::rng();\nlet q = thread_rng();\n";
        assert_eq!(codes(src), vec!["RL001", "RL002", "RL003", "RL003"]);
    }

    #[test]
    fn flags_entropy_seeding() {
        let src = "let a = StdRng::from_entropy();\nlet b = SmallRng::from_os_rng();\nlet mut c = OsRng;\ngetrandom(&mut buf).unwrap();\n";
        assert_eq!(codes(src), vec!["RL005", "RL005", "RL005", "RL005"]);
    }

    #[test]
    fn seeded_construction_not_flagged() {
        let src = "let rng = StdRng::seed_from_u64(params.seed);\nlet s = splitmix64(seed);\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn comments_are_ignored() {
        let src = "// SystemTime::now is banned\nlet x = 1; // Instant::now\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn hash_iteration_flagged_with_witness() {
        let src =
            "let pending: HashMap<u64, Txn> = HashMap::new();\nfor (k, v) in pending.iter() {\n";
        let diags = scan_file("x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL004");
        match &diags[0].witness {
            Witness::Source { file, line, .. } => {
                assert_eq!(file, "x.rs");
                assert_eq!(*line, 2);
            }
            w => panic!("wrong witness {w:?}"),
        }
    }

    #[test]
    fn allow_comment_silences_hash_iteration() {
        let same_line =
            "let m: HashSet<u32> = HashSet::new();\nlet v: Vec<_> = m.iter().collect(); // replint: allow(hash-iter)\n";
        assert!(codes(same_line).is_empty());
        let line_above =
            "let m: HashSet<u32> = HashSet::new();\n// replint: allow(hash-iter)\nfor x in &m {\n";
        assert!(codes(line_above).is_empty());
    }

    #[test]
    fn btree_iteration_not_flagged() {
        let src = "let m: BTreeMap<u32, u32> = BTreeMap::new();\nfor x in m.iter() {\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn unrelated_names_not_flagged() {
        let src = "let m: HashMap<u32, u32> = HashMap::new();\nlet matrix = rows.iter();\nfor x in &matrix2 {\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn field_access_iteration_flagged() {
        let src = "struct S { pending: HashMap<u64, u64>, }\nfn f(s: &S) { for x in s.pending.iter() {} }\n";
        assert_eq!(codes(src), vec!["RL004"]);
    }

    #[test]
    fn blocking_network_io_flagged() {
        let src = "use std::net::TcpListener;\nlet s = TcpStream::connect(addr)?;\nlet u = UdpSocket::bind(addr)?;\n";
        // One diagnostic per line, even when a line matches two patterns.
        assert_eq!(codes(src), vec!["RL006", "RL006", "RL006"]);
        let comment_only = "// TcpStream is banned here\nlet x = 1; // std::net\n";
        assert!(codes(comment_only).is_empty());
    }

    #[test]
    fn sans_io_imports_flagged_only_under_crates_protocol() {
        let src = "use std::thread;\nuse std::time::Duration;\nuse crossbeam::channel;\n";
        let in_protocol: Vec<_> =
            scan_file("crates/protocol/src/machine.rs", src).into_iter().map(|d| d.code).collect();
        assert_eq!(in_protocol, vec!["RL007", "RL007", "RL007"]);
        // The same imports are fine in a driver crate.
        assert!(scan_file("crates/runtime/src/site.rs", src).is_empty());
    }

    #[test]
    fn sans_io_net_import_flagged_alongside_rl006() {
        // std::net in the protocol core violates both the general
        // no-sockets rule and the sans-I/O contract.
        let src = "use std::net::TcpStream;\n";
        let codes: Vec<_> =
            scan_file("crates/protocol/src/wire.rs", src).into_iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["RL006", "RL007"]);
    }

    #[test]
    fn sans_io_comments_not_flagged() {
        let src = "// drivers own std::time and std::thread\nlet x = 1;\n";
        assert!(scan_file("crates/protocol/src/lib.rs", src).is_empty());
    }
}
