//! The determinism lint: a line-oriented source scanner.
//!
//! Simulation results must be a pure function of their seeds; the paper's
//! experiments are only reproducible if no wall-clock time, ambient
//! randomness, or hash-order iteration leaks into the simulator. The
//! `replint` binary runs these rules over the deterministic crates, and a
//! separate panic-freedom rule over the long-running runtime crates:
//!
//! | code  | rejects |
//! |-------|---------|
//! | RL000 | (warning) a `replint: allow(…)` comment that matches no diagnostic |
//! | RL001 | `SystemTime::now` |
//! | RL002 | `Instant::now` |
//! | RL003 | `thread_rng` / `rand::rng()` (ambient, unseeded RNGs) |
//! | RL004 | iteration over a `HashMap`/`HashSet` binding (unordered) |
//! | RL005 | entropy-seeded RNG construction (`from_entropy`, `from_os_rng`, `OsRng`, `getrandom`) |
//! | RL006 | blocking network I/O (`std::net`, `TcpStream`, `TcpListener`, `UdpSocket`) |
//! | RL007 | any I/O, threading, or clock import inside `crates/protocol` |
//! | RL008 | `unwrap`/`expect`/`panic!`/`unreachable!` in non-test runtime code |
//! | RL009 | blocking socket call patterns inside the epoll reactor |
//! | RL010 | bare `thread::sleep` or hardcoded retry-duration consts in `crates/runtime` outside the policy module |
//! | RL011 | lock-manager access on the MVCC snapshot-read path (storage `mvcc.rs`/`snapshot.rs`, and the `read_snapshot` body in `store.rs`) |
//! | RL012 | raw `Transport::try_send`/`try_send_batch` calls in `crates/runtime` outside `transport.rs`/`nemesis.rs` (bypassing the per-link outbox) |
//!
//! Files are classified by path ([`FileClass`]): paths under
//! `crates/runtime` or `crates/net` get the panic-freedom rule
//! RL008 (they legitimately own sockets, clocks and threads — a
//! long-running site process just must not die on a stray `unwrap`),
//! and `crates/runtime` sources outside `src/policy.rs` additionally
//! get the timing-policy rule RL010; every other path gets the
//! determinism rules, and paths under `crates/protocol` additionally
//! get the sans-I/O rule RL007.
//!
//! RL009 guards the single-threaded readiness loop: one blocking
//! `accept`/`read`/`write` anywhere in `runtime/src/reactor.rs` parks
//! the whole site — every peer link, every client — so raw socket
//! calls are rejected there by pattern. The three sanctioned
//! nonblocking helpers at the bottom of the module carry
//! `// replint: allow(RL009)` comments; everything else must funnel
//! through them.
//!
//! RL006 keeps real sockets out of the deterministic layers: the
//! simulator models the network in virtual time, so any code under the
//! deterministic crates that touches `std::net` both blocks on real I/O
//! and injects wall-clock timing into results. Socket code belongs in
//! `repl-net`/`repl-runtime`.
//!
//! RL007 enforces the sans-I/O contract of `repl-protocol`: the crate is
//! the single propagation state machine shared by the simulator and the
//! live runtime, and it stays shareable only while it owns no clocks,
//! threads, channels, or sockets. Files whose path lies under
//! `crates/protocol` may not mention `std::thread`, `std::time`,
//! `std::net`, or `crossbeam` — drivers own all of those.
//!
//! RL004 is a heuristic: the scanner collects names declared with a
//! `HashMap<…>`/`HashSet<…>` type ascription in the same file and flags
//! iteration calls (`.iter()`, `.keys()`, `.values()`, `.drain()`,
//! `.into_keys()`, `.into_values()`, …) on those names — directly,
//! through a chain of intermediate calls (`m.lock().keys()`), on a
//! continuation line of a builder-style chain, and in `for … in &name`
//! loops. Comment-only lines are never flagged.
//!
//! RL008 skips `#[cfg(test)]` regions (tracked by brace depth): tests
//! may unwrap freely, the site loop may not.
//!
//! RL010 keeps retry timing in one place: every sleep and every
//! retry/timeout/backoff duration in `crates/runtime` must route
//! through `runtime/src/policy.rs` (`policy::pace`, `RetryPolicy`),
//! where the knobs are configurable and jittered, instead of being
//! hardcoded at the call site. The policy module itself is the one
//! sanctioned home for the real `thread::sleep`, and `#[cfg(test)]`
//! regions are skipped the same way RL008 skips them.
//!
//! RL011 pins the MVCC subsystem's one structural invariant: snapshot
//! reads never touch the lock manager, so a read-only transaction can
//! neither block behind the write stream nor deadlock against it. The
//! rule is path-gated inside the determinism class — `mvcc.rs` and
//! `snapshot.rs` under `crates/storage` may not name `LockManager` (or
//! reach it through `self.locks`) anywhere, and in `store.rs` the same
//! ban covers the body of `fn read_snapshot`, tracked by brace depth.
//! The rest of `store.rs` legitimately owns the 2PL path; `#[cfg(test)]`
//! regions are skipped the same way RL008 skips them.
//!
//! RL012 pins the propagation send funnel: every frame leaving a site
//! must route through `Net::send`/`Net::send_batch` in
//! `runtime/src/transport.rs`, which assigns the per-link sequence
//! number and enrolls the payload in the unacked outbox *under one lane
//! lock* — a raw `Transport::try_send` anywhere else would emit frames
//! with no replay entry (lost on the first drop) or out of sequence
//! (gap-dropped by the receiver's dedup discipline). `transport.rs`
//! itself and the fault-injection shim `nemesis.rs` (which wraps the
//! raw transport *below* the outbox) are the two sanctioned homes;
//! trait-impl forwarding elsewhere carries `// replint: allow(RL012)`
//! justifications. `#[cfg(test)]` regions are skipped the same way
//! RL008 skips them.
//!
//! Any rule is silenced for one finding with a suppression comment on
//! the same line or the line above: `// replint: allow(RL004)` (several
//! codes comma-separated; the historical spelling `allow(hash-iter)` is
//! an alias for RL004). Suppressions that match no diagnostic are
//! themselves reported as RL000 warnings so stale escapes get cleaned
//! up instead of silently rotting.

use crate::diag::{Diagnostic, Witness};

const ALLOW_MARK: &str = "replint: allow(";

/// Which rule set a file gets, decided by its path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Determinism rules RL001–RL006; `sans_io` adds RL007.
    Determinism {
        /// The file lies inside the sans-I/O protocol core.
        sans_io: bool,
    },
    /// Panic-freedom rule RL008 (long-running runtime crates);
    /// `reactor` adds the no-blocking-I/O rule RL009.
    PanicFree {
        /// The file is the epoll reactor's readiness loop.
        reactor: bool,
    },
    /// No rules (integration tests of the runtime crates: test code may
    /// unwrap freely, and driver tests legitimately use clocks).
    Exempt,
}

/// Classify a path into the rule set it must satisfy.
pub fn classify(path_label: &str) -> FileClass {
    if path_label.contains("crates/runtime") || path_label.contains("crates/net") {
        if path_label.contains("/tests/") || path_label.contains("\\tests\\") {
            FileClass::Exempt
        } else {
            let reactor = path_label.contains("runtime/src/reactor.rs")
                || path_label.contains("runtime\\src\\reactor.rs");
            FileClass::PanicFree { reactor }
        }
    } else {
        FileClass::Determinism { sans_io: path_label.contains("crates/protocol") }
    }
}

/// One `replint: allow(…)` comment.
struct Suppression {
    /// 1-based line the comment sits on; it covers this line and the next.
    line: u32,
    /// Canonical codes it names (aliases resolved).
    codes: Vec<String>,
    used: bool,
}

fn canonical_code(raw: &str) -> String {
    let raw = raw.trim();
    if raw.eq_ignore_ascii_case("hash-iter") {
        "RL004".to_owned()
    } else {
        raw.to_ascii_uppercase()
    }
}

fn collect_suppressions(src: &str) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        if let Some(pos) = raw.find(ALLOW_MARK) {
            let rest = &raw[pos + ALLOW_MARK.len()..];
            if let Some(end) = rest.find(')') {
                let codes: Vec<String> =
                    rest[..end].split(',').map(canonical_code).filter(|c| !c.is_empty()).collect();
                if !codes.is_empty() {
                    out.push(Suppression { line: idx as u32 + 1, codes, used: false });
                }
            }
        }
    }
    out
}

/// RL008's `#[cfg(test)]` region tracker.
enum TestRegion {
    Outside,
    /// Saw the attribute, waiting for the item's opening brace.
    AwaitBrace,
    /// Inside the item, at this brace depth.
    Inside(i32),
}

/// Scan one source file; `path_label` selects the rule set
/// ([`classify`]) and is used verbatim in witnesses.
pub fn scan_file(path_label: &str, src: &str) -> Vec<Diagnostic> {
    let class = classify(path_label);
    let mut suppressions = collect_suppressions(src);
    let mut diags = Vec::new();
    {
        // Emit a finding unless a suppression on the same line or the
        // line above names its code.
        let mut emit = |diags: &mut Vec<Diagnostic>,
                        code: &'static str,
                        message: &str,
                        lineno: u32,
                        text: &str| {
            for s in suppressions.iter_mut() {
                if (s.line == lineno || s.line + 1 == lineno) && s.codes.iter().any(|c| c == code) {
                    s.used = true;
                    return;
                }
            }
            diags.push(source_diag(code, message, path_label, lineno, text));
        };
        match class {
            FileClass::Determinism { sans_io } => {
                scan_determinism(path_label, src, sans_io, &mut |c, m, l, t| {
                    emit(&mut diags, c, m, l, t)
                });
                scan_mvcc_lock_free(path_label, src, &mut |c, m, l, t| {
                    emit(&mut diags, c, m, l, t)
                });
            }
            FileClass::PanicFree { reactor } => {
                scan_panic_free(src, &mut |c, m, l, t| emit(&mut diags, c, m, l, t));
                if reactor {
                    scan_reactor_nonblocking(src, &mut |c, m, l, t| emit(&mut diags, c, m, l, t));
                }
                let in_runtime =
                    path_label.contains("crates/runtime") || path_label.contains("crates\\runtime");
                let is_policy = path_label.contains("runtime/src/policy.rs")
                    || path_label.contains("runtime\\src\\policy.rs");
                if in_runtime && !is_policy {
                    scan_timing(src, &mut |c, m, l, t| emit(&mut diags, c, m, l, t));
                }
                let is_send_funnel = path_label.contains("runtime/src/transport.rs")
                    || path_label.contains("runtime\\src\\transport.rs")
                    || path_label.contains("runtime/src/nemesis.rs")
                    || path_label.contains("runtime\\src\\nemesis.rs");
                if in_runtime && !is_send_funnel {
                    scan_raw_transport_send(src, &mut |c, m, l, t| emit(&mut diags, c, m, l, t));
                }
            }
            FileClass::Exempt => return Vec::new(),
        }
    }
    for s in &suppressions {
        if !s.used {
            diags.push(Diagnostic::warning(
                "RL000",
                format!(
                    "{path_label}:{}: suppression `allow({})` matches no diagnostic; remove it",
                    s.line,
                    s.codes.join(",")
                ),
                Witness::Source {
                    file: path_label.to_owned(),
                    line: s.line,
                    text: src.lines().nth(s.line as usize - 1).unwrap_or("").trim().to_owned(),
                },
            ));
        }
    }
    diags.sort_by_key(|d| match &d.witness {
        Witness::Source { line, .. } => *line,
        _ => 0,
    });
    diags
}

fn scan_determinism(
    _path_label: &str,
    src: &str,
    sans_io: bool,
    emit: &mut dyn FnMut(&'static str, &str, u32, &str),
) {
    let hash_names = collect_hash_bindings(src);
    // A builder-style chain left hanging at end-of-line, rooted (possibly
    // several continuation lines back) at a tracked hash binding.
    let mut open_chain: Option<String> = None;

    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx as u32 + 1;
        if line.starts_with("//") {
            continue;
        }
        let code_part = strip_line_comment(raw);

        if code_part.contains("SystemTime::now") {
            emit(
                "RL001",
                "wall-clock read: SystemTime::now is not a function of the seed",
                lineno,
                line,
            );
        }
        if code_part.contains("Instant::now") {
            emit(
                "RL002",
                "wall-clock read: Instant::now is not a function of the seed",
                lineno,
                line,
            );
        }
        if code_part.contains("thread_rng") || code_part.contains("rand::rng()") {
            emit("RL003", "ambient RNG: use an explicitly seeded generator", lineno, line);
        }
        if code_part.contains("from_entropy")
            || code_part.contains("from_os_rng")
            || code_part.contains("OsRng")
            || code_part.contains("getrandom")
        {
            emit(
                "RL005",
                "entropy-seeded RNG: OS entropy varies across runs; derive the seed \
                 from the experiment parameters instead",
                lineno,
                line,
            );
        }
        for pat in ["std::net", "TcpStream", "TcpListener", "UdpSocket"] {
            if code_part.contains(pat) {
                emit(
                    "RL006",
                    &format!(
                        "blocking network I/O ({pat}): real sockets have no place in \
                         the deterministic layers; put socket code in repl-net or \
                         repl-runtime"
                    ),
                    lineno,
                    line,
                );
                break;
            }
        }
        if sans_io {
            for pat in ["std::thread", "std::time", "std::net", "crossbeam"] {
                if code_part.contains(pat) {
                    emit(
                        "RL007",
                        &format!(
                            "{pat} inside the sans-I/O protocol core: repl-protocol \
                             is shared by the simulator and the live runtime, so \
                             clocks, threads, channels, and sockets belong to the \
                             drivers, never the state machine"
                        ),
                        lineno,
                        line,
                    );
                    break;
                }
            }
        }
        let trimmed_code = code_part.trim();
        let continues_chain = trimmed_code.starts_with('.');
        let mut flagged = false;
        if continues_chain {
            if let Some(name) = &open_chain {
                if starts_with_iteration_method(trimmed_code) {
                    let name = name.clone();
                    emit_hash_iter(emit, &name, lineno, line);
                    flagged = true;
                }
            }
        }
        if !flagged {
            for name in &hash_names {
                if iterates_hash_binding(code_part, name) {
                    emit_hash_iter(emit, name, lineno, line);
                    break;
                }
            }
        }
        // Track chain roots for continuation lines: a line ending in a
        // tracked binding opens a chain; a continuation line keeps it
        // open; anything else closes it.
        let ends_open = trimmed_code
            .ends_with(|c: char| c.is_alphanumeric() || c == '_' || c == ')' || c == '?');
        if let Some(name) = hash_names.iter().find(|n| chain_root_ends_with(trimmed_code, n)) {
            open_chain = Some(name.clone());
        } else if !(continues_chain && ends_open && open_chain.is_some()) {
            open_chain = None;
        }
    }
}

fn emit_hash_iter(
    emit: &mut dyn FnMut(&'static str, &str, u32, &str),
    name: &str,
    lineno: u32,
    line: &str,
) {
    emit(
        "RL004",
        &format!(
            "iteration over hash-ordered `{name}`: order varies across \
             runs; use BTreeMap/BTreeSet, sort first, or annotate \
             `// replint: allow(RL004)`"
        ),
        lineno,
        line,
    );
}

fn scan_panic_free(src: &str, emit: &mut dyn FnMut(&'static str, &str, u32, &str)) {
    let mut region = TestRegion::Outside;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx as u32 + 1;
        if line.starts_with("//") {
            continue;
        }
        let code_part = strip_line_comment(raw);
        let (opens, closes) = brace_count(code_part);
        match region {
            TestRegion::Outside => {
                if code_part.contains("#[cfg(test)]") {
                    region = TestRegion::AwaitBrace;
                    continue;
                }
            }
            TestRegion::AwaitBrace => {
                if opens > 0 {
                    let depth = opens - closes;
                    region =
                        if depth > 0 { TestRegion::Inside(depth) } else { TestRegion::Outside };
                }
                continue;
            }
            TestRegion::Inside(depth) => {
                let depth = depth + opens - closes;
                region = if depth > 0 { TestRegion::Inside(depth) } else { TestRegion::Outside };
                continue;
            }
        }
        for pat in [".unwrap()", ".expect(", "panic!(", "unreachable!("] {
            if code_part.contains(pat) {
                emit(
                    "RL008",
                    &format!(
                        "panicking call ({pat}) in long-running runtime code: a site \
                         process must survive bad input; handle the error or justify \
                         with `// replint: allow(RL008)`"
                    ),
                    lineno,
                    line,
                );
                break;
            }
        }
    }
}

/// Raw socket call patterns that would park the readiness loop if the
/// fd were (or ever became) blocking. The reactor funnels all raw I/O
/// through three nonblocking helpers, each carrying an
/// `// replint: allow(RL009)` justification; any other match is a bug.
const BLOCKING_IO_PATTERNS: &[&str] = &[
    ".accept(",
    ".read(",
    ".read_exact(",
    ".read_to_end(",
    ".read_to_string(",
    ".write(",
    ".write_all(",
    "read_msg(",
    "write_msg(",
];

fn scan_reactor_nonblocking(src: &str, emit: &mut dyn FnMut(&'static str, &str, u32, &str)) {
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx as u32 + 1;
        if line.starts_with("//") {
            continue;
        }
        let code_part = strip_line_comment(raw);
        for pat in BLOCKING_IO_PATTERNS {
            if code_part.contains(pat) {
                emit(
                    "RL009",
                    &format!(
                        "raw socket call ({pat}) in the reactor: one blocking \
                         syscall parks every connection of the site; route it \
                         through the nonblocking read_some/write_some/accept_some \
                         helpers or justify with `// replint: allow(RL009)`"
                    ),
                    lineno,
                    line,
                );
                break;
            }
        }
    }
}

/// Identifier fragments that mark a duration constant as a retry knob:
/// a `const …RETRY…: Duration` hardcodes what `RetryPolicy` should own.
const RETRY_KNOB_FRAGMENTS: &[&str] = &["RETRY", "TIMEOUT", "BACKOFF"];

/// RL010: timing policy must live in `runtime/src/policy.rs`. Flags
/// bare `thread::sleep` calls and hardcoded retry/timeout/backoff
/// `Duration` constants anywhere else under `crates/runtime`, skipping
/// `#[cfg(test)]` regions the same way RL008 does.
fn scan_timing(src: &str, emit: &mut dyn FnMut(&'static str, &str, u32, &str)) {
    let mut region = TestRegion::Outside;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx as u32 + 1;
        if line.starts_with("//") {
            continue;
        }
        let code_part = strip_line_comment(raw);
        let (opens, closes) = brace_count(code_part);
        match region {
            TestRegion::Outside => {
                if code_part.contains("#[cfg(test)]") {
                    region = TestRegion::AwaitBrace;
                    continue;
                }
            }
            TestRegion::AwaitBrace => {
                if opens > 0 {
                    let depth = opens - closes;
                    region =
                        if depth > 0 { TestRegion::Inside(depth) } else { TestRegion::Outside };
                }
                continue;
            }
            TestRegion::Inside(depth) => {
                let depth = depth + opens - closes;
                region = if depth > 0 { TestRegion::Inside(depth) } else { TestRegion::Outside };
                continue;
            }
        }
        if code_part.contains("thread::sleep") {
            emit(
                "RL010",
                "bare thread::sleep in runtime code: pacing belongs to the policy \
                 module (policy::pace, RetryPolicy::delay) so every wait is \
                 configurable and jittered in one place; justify with \
                 `// replint: allow(RL010)`",
                lineno,
                line,
            );
        }
        if let Some(name) = hardcoded_retry_const(code_part) {
            emit(
                "RL010",
                &format!(
                    "hardcoded retry-duration constant `{name}`: timing knobs \
                     belong on RetryPolicy in runtime/src/policy.rs, not as \
                     per-module constants; justify with `// replint: allow(RL010)`"
                ),
                lineno,
                line,
            );
        }
    }
}

/// The name of a `const …RETRY/TIMEOUT/BACKOFF…: Duration` declared on
/// this line, if any.
fn hardcoded_retry_const(code: &str) -> Option<String> {
    let pos = code.find("const ")?;
    let rest = code[pos + "const ".len()..].trim_start();
    let ident: String = rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if ident.is_empty() {
        return None;
    }
    let after = rest[ident.len()..].trim_start();
    let ty = after.strip_prefix(':')?.trim_start();
    if !ty.starts_with("Duration") && !ty.starts_with("std::time::Duration") {
        return None;
    }
    let upper = ident.to_ascii_uppercase();
    if RETRY_KNOB_FRAGMENTS.iter().any(|frag| upper.contains(frag)) {
        Some(ident)
    } else {
        None
    }
}

/// Raw transport send patterns banned outside the outbox funnel.
const RAW_SEND_PATTERNS: &[&str] = &[".try_send(", ".try_send_batch("];

/// RL012: propagation sends route through the per-link outbox. A raw
/// `Transport::try_send`/`try_send_batch` call anywhere in
/// `crates/runtime` outside `transport.rs` (where `Net::send` and
/// `Net::send_batch` assign sequence numbers and enroll payloads in the
/// unacked outbox under one lane lock) and `nemesis.rs` (the fault shim
/// wrapping the raw transport below the outbox) emits frames that the
/// replay/dedup discipline never sees. `#[cfg(test)]` regions are
/// skipped the same way RL008 skips them.
fn scan_raw_transport_send(src: &str, emit: &mut dyn FnMut(&'static str, &str, u32, &str)) {
    let mut region = TestRegion::Outside;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx as u32 + 1;
        if line.starts_with("//") {
            continue;
        }
        let code_part = strip_line_comment(raw);
        let (opens, closes) = brace_count(code_part);
        match region {
            TestRegion::Outside => {
                if code_part.contains("#[cfg(test)]") {
                    region = TestRegion::AwaitBrace;
                    continue;
                }
            }
            TestRegion::AwaitBrace => {
                if opens > 0 {
                    let depth = opens - closes;
                    region =
                        if depth > 0 { TestRegion::Inside(depth) } else { TestRegion::Outside };
                }
                continue;
            }
            TestRegion::Inside(depth) => {
                let depth = depth + opens - closes;
                region = if depth > 0 { TestRegion::Inside(depth) } else { TestRegion::Outside };
                continue;
            }
        }
        for pat in RAW_SEND_PATTERNS {
            if code_part.contains(pat) {
                emit(
                    "RL012",
                    &format!(
                        "raw transport send ({pat}) outside the outbox funnel: \
                         frames sent here bypass sequence assignment and the \
                         unacked replay buffer; route through Net::send / \
                         Net::send_batch or justify with `// replint: allow(RL012)`"
                    ),
                    lineno,
                    line,
                );
                break;
            }
        }
    }
}

/// Lock-manager tokens banned from the MVCC snapshot-read path. Direct
/// type mentions and every route to the `Store::locks` field.
const LOCK_PATH_PATTERNS: &[&str] =
    &["LockManager", "LockMode", "self.locks", ".locks()", ".locks_mut("];

/// RL011: the MVCC snapshot-read path stays lock-free. In
/// `storage/src/mvcc.rs` and `storage/src/snapshot.rs` the lock-manager
/// tokens are banned everywhere; in `storage/src/store.rs` only inside
/// the `fn read_snapshot` item, tracked by brace depth (the rest of the
/// store legitimately owns the 2PL path). `#[cfg(test)]` regions are
/// skipped the same way RL008 skips them; other determinism-class files
/// are untouched.
fn scan_mvcc_lock_free(
    path_label: &str,
    src: &str,
    emit: &mut dyn FnMut(&'static str, &str, u32, &str),
) {
    let norm = path_label.replace('\\', "/");
    let whole_file =
        norm.contains("storage/src/mvcc.rs") || norm.contains("storage/src/snapshot.rs");
    let read_fn_only = norm.contains("storage/src/store.rs");
    if !whole_file && !read_fn_only {
        return;
    }
    let mut region = TestRegion::Outside;
    // Brace depth of `fn read_snapshot`'s body while inside it
    // (`read_fn_only` files); the signature line itself is in scope.
    let mut read_fn: Option<i32> = None;
    let mut awaiting_read_fn_brace = false;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx as u32 + 1;
        if line.starts_with("//") {
            continue;
        }
        let code_part = strip_line_comment(raw);
        let (opens, closes) = brace_count(code_part);
        match region {
            TestRegion::Outside => {
                if code_part.contains("#[cfg(test)]") {
                    region = TestRegion::AwaitBrace;
                    continue;
                }
            }
            TestRegion::AwaitBrace => {
                if opens > 0 {
                    let depth = opens - closes;
                    region =
                        if depth > 0 { TestRegion::Inside(depth) } else { TestRegion::Outside };
                }
                continue;
            }
            TestRegion::Inside(depth) => {
                let depth = depth + opens - closes;
                region = if depth > 0 { TestRegion::Inside(depth) } else { TestRegion::Outside };
                continue;
            }
        }
        let in_scope = if whole_file {
            true
        } else if let Some(depth) = read_fn {
            let depth = depth + opens - closes;
            read_fn = if depth > 0 { Some(depth) } else { None };
            true
        } else if awaiting_read_fn_brace {
            if opens > 0 {
                awaiting_read_fn_brace = false;
                let depth = opens - closes;
                read_fn = if depth > 0 { Some(depth) } else { None };
            }
            true
        } else if code_part.contains("fn read_snapshot") {
            if opens > 0 {
                let depth = opens - closes;
                read_fn = if depth > 0 { Some(depth) } else { None };
            } else {
                awaiting_read_fn_brace = true;
            }
            true
        } else {
            false
        };
        if !in_scope {
            continue;
        }
        for pat in LOCK_PATH_PATTERNS {
            if code_part.contains(pat) {
                emit(
                    "RL011",
                    &format!(
                        "lock-manager access ({pat}) on the MVCC snapshot-read \
                         path: snapshot reads must never block behind the write \
                         stream; serve them from the version chains or justify \
                         with `// replint: allow(RL011)`"
                    ),
                    lineno,
                    line,
                );
                break;
            }
        }
    }
}

fn brace_count(code: &str) -> (i32, i32) {
    let mut opens = 0;
    let mut closes = 0;
    let mut in_str = false;
    let bytes = code.as_bytes();
    for i in 0..bytes.len() {
        match bytes[i] {
            b'"' if i == 0 || bytes[i - 1] != b'\\' => in_str = !in_str,
            b'{' if !in_str => opens += 1,
            b'}' if !in_str => closes += 1,
            _ => {}
        }
    }
    (opens, closes)
}

fn source_diag(code: &'static str, message: &str, file: &str, line: u32, text: &str) -> Diagnostic {
    Diagnostic::error(
        code,
        format!("{file}:{line}: {message}"),
        Witness::Source { file: file.to_owned(), line, text: text.to_owned() },
    )
}

/// Names declared in this file with an explicit `HashMap<`/`HashSet<`
/// type ascription: `name: HashMap<...>` in struct fields, lets, or
/// signatures.
fn collect_hash_bindings(src: &str) -> Vec<String> {
    let mut names = Vec::new();
    for raw in src.lines() {
        let line = strip_line_comment(raw);
        let mut rest = line;
        while let Some(colon) = rest.find(':') {
            let (before, after) = rest.split_at(colon);
            let after = &after[1..];
            let after_trim = after.trim_start();
            if after_trim.starts_with("HashMap<")
                || after_trim.starts_with("HashSet<")
                || after_trim.starts_with("std::collections::HashMap<")
                || after_trim.starts_with("std::collections::HashSet<")
            {
                if let Some(name) = trailing_ident(before) {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
            rest = after;
        }
    }
    names
}

fn trailing_ident(s: &str) -> Option<String> {
    let s = s.trim_end();
    let end = s.len();
    let start = s
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
        .map(|(i, _)| i)
        .last()?;
    let ident = &s[start..end];
    let first = ident.chars().next()?;
    if first.is_alphabetic() || first == '_' {
        Some(ident.to_owned())
    } else {
        None
    }
}

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];

fn starts_with_iteration_method(s: &str) -> bool {
    ITER_METHODS.iter().any(|m| s.starts_with(m))
}

/// True if `trimmed` ends with the bare binding `name` (a hanging chain
/// root, e.g. `let v: Vec<_> = pending` before a `.keys()` line).
fn chain_root_ends_with(trimmed: &str, name: &str) -> bool {
    trimmed.ends_with(name) && {
        let before = &trimmed[..trimmed.len() - name.len()];
        !before.chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_')
    }
}

fn iterates_hash_binding(line: &str, name: &str) -> bool {
    // Direct or field-access iteration: `name.keys()`, `self.name.iter()`,
    // or through a chain of intermediate calls: `name.lock().keys()`.
    for (pos, _) in line.match_indices(name) {
        if ident_continues_left(line, pos) && !line[..pos].ends_with('.') {
            continue;
        }
        let mut rest = &line[pos + name.len()..];
        loop {
            if starts_with_iteration_method(rest) {
                return true;
            }
            match skip_chain_segment(rest) {
                Some(next) => rest = next,
                None => break,
            }
        }
    }
    for pat in [format!("in &{name}"), format!("in &mut {name}"), format!("in {name} ")] {
        for (pos, _) in line.match_indices(&pat) {
            let after = pos + pat.len();
            if !ident_continues_right(line, after) {
                return true;
            }
        }
    }
    false
}

/// Skip one `.method(args)` (or `?`) chain segment, returning the rest
/// of the line after it, or `None` if the chain ends here.
fn skip_chain_segment(s: &str) -> Option<&str> {
    if let Some(rest) = s.strip_prefix('?') {
        return Some(rest);
    }
    let rest = s.strip_prefix('.')?;
    let ident_len = rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').count();
    if ident_len == 0 {
        return None;
    }
    let rest = &rest[ident_len..];
    let rest = rest.strip_prefix('(')?;
    let mut depth = 1usize;
    for (i, c) in rest.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[i + 1..]);
                }
            }
            _ => {}
        }
    }
    None
}

fn ident_continues_left(line: &str, pos: usize) -> bool {
    line[..pos].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.')
}

fn ident_continues_right(line: &str, pos: usize) -> bool {
    line[pos..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Strip a trailing `// …` comment, ignoring `//` inside string literals
/// (a cheap scan: tracks double-quote parity).
fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' if i == 0 || bytes[i - 1] != b'\\' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<&'static str> {
        scan_file("test.rs", src).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn flags_wall_clock_and_rng() {
        let src = "let t = SystemTime::now();\nlet i = Instant::now();\nlet r = rand::rng();\nlet q = thread_rng();\n";
        assert_eq!(codes(src), vec!["RL001", "RL002", "RL003", "RL003"]);
    }

    #[test]
    fn flags_entropy_seeding() {
        let src = "let a = StdRng::from_entropy();\nlet b = SmallRng::from_os_rng();\nlet mut c = OsRng;\ngetrandom(&mut buf).unwrap();\n";
        assert_eq!(codes(src), vec!["RL005", "RL005", "RL005", "RL005"]);
    }

    #[test]
    fn seeded_construction_not_flagged() {
        let src = "let rng = StdRng::seed_from_u64(params.seed);\nlet s = splitmix64(seed);\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn comments_are_ignored() {
        let src = "// SystemTime::now is banned\nlet x = 1; // Instant::now\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn hash_iteration_flagged_with_witness() {
        let src =
            "let pending: HashMap<u64, Txn> = HashMap::new();\nfor (k, v) in pending.iter() {\n";
        let diags = scan_file("x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL004");
        match &diags[0].witness {
            Witness::Source { file, line, .. } => {
                assert_eq!(file, "x.rs");
                assert_eq!(*line, 2);
            }
            w => panic!("wrong witness {w:?}"),
        }
    }

    #[test]
    fn allow_comment_silences_hash_iteration() {
        let same_line =
            "let m: HashSet<u32> = HashSet::new();\nlet v: Vec<_> = m.iter().collect(); // replint: allow(hash-iter)\n";
        assert!(codes(same_line).is_empty());
        let line_above =
            "let m: HashSet<u32> = HashSet::new();\n// replint: allow(hash-iter)\nfor x in &m {\n";
        assert!(codes(line_above).is_empty());
    }

    #[test]
    fn per_code_allow_silences_any_rule() {
        let src = "let t = SystemTime::now(); // replint: allow(RL001)\n";
        assert!(codes(src).is_empty());
        let above = "// replint: allow(RL002)\nlet i = Instant::now();\n";
        assert!(codes(above).is_empty());
        let multi =
            "// replint: allow(RL001, RL002)\nlet t = (SystemTime::now(), Instant::now());\n";
        assert!(codes(multi).is_empty());
    }

    #[test]
    fn allow_for_wrong_code_does_not_silence() {
        let src = "let t = SystemTime::now(); // replint: allow(RL002)\n";
        // The finding survives and the suppression is reported stale.
        assert_eq!(codes(src), vec!["RL001", "RL000"]);
    }

    #[test]
    fn stale_suppression_warns_rl000() {
        let src = "// replint: allow(RL004)\nlet x = 1;\n";
        let diags = scan_file("y.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL000");
        assert_eq!(diags[0].severity, crate::diag::Severity::Warning);
    }

    #[test]
    fn used_suppression_does_not_warn() {
        let src =
            "let m: HashSet<u32> = HashSet::new();\nlet v: Vec<_> = m.iter().collect(); // replint: allow(RL004)\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn btree_iteration_not_flagged() {
        let src = "let m: BTreeMap<u32, u32> = BTreeMap::new();\nfor x in m.iter() {\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn unrelated_names_not_flagged() {
        let src = "let m: HashMap<u32, u32> = HashMap::new();\nlet matrix = rows.iter();\nfor x in &matrix2 {\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn field_access_iteration_flagged() {
        let src = "struct S { pending: HashMap<u64, u64>, }\nfn f(s: &S) { for x in s.pending.iter() {} }\n";
        assert_eq!(codes(src), vec!["RL004"]);
    }

    #[test]
    fn chained_keys_values_drain_flagged() {
        let decl = "let m: HashMap<u64, u64> = HashMap::new();\n";
        for iter in ["m.keys()", "m.values()", "m.drain()", "m.into_keys()", "m.into_values()"] {
            let src = format!("{decl}let v: Vec<_> = {iter}.collect();\n");
            assert_eq!(codes(&src), vec!["RL004"], "{iter}");
        }
    }

    #[test]
    fn iteration_through_intermediate_calls_flagged() {
        let src = "let m: HashMap<u64, u64> = HashMap::new();\nlet v: Vec<_> = m.clone().keys().collect();\n";
        assert_eq!(codes(src), vec!["RL004"]);
        let locked =
            "struct S { m: HashMap<u64, u64>, }\nfn f(s: &S) { for k in s.m.borrow().keys() {} }\n";
        assert_eq!(codes(locked), vec!["RL004"]);
    }

    #[test]
    fn multiline_chain_iteration_flagged() {
        let src = "let pending: HashMap<u64, u64> = HashMap::new();\nlet v: Vec<_> = pending\n    .keys()\n    .collect();\n";
        let diags = scan_file("z.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL004");
        match &diags[0].witness {
            Witness::Source { line, .. } => assert_eq!(*line, 3),
            w => panic!("wrong witness {w:?}"),
        }
    }

    #[test]
    fn multiline_chain_on_unrelated_root_not_flagged() {
        let src = "let m: HashMap<u64, u64> = HashMap::new();\nlet v: Vec<_> = rows\n    .iter()\n    .collect();\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn blocking_network_io_flagged() {
        let src = "use std::net::TcpListener;\nlet s = TcpStream::connect(addr)?;\nlet u = UdpSocket::bind(addr)?;\n";
        // One diagnostic per line, even when a line matches two patterns.
        assert_eq!(codes(src), vec!["RL006", "RL006", "RL006"]);
        let comment_only = "// TcpStream is banned here\nlet x = 1; // std::net\n";
        assert!(codes(comment_only).is_empty());
    }

    #[test]
    fn sans_io_imports_flagged_only_under_crates_protocol() {
        let src = "use std::thread;\nuse std::time::Duration;\nuse crossbeam::channel;\n";
        let in_protocol: Vec<_> =
            scan_file("crates/protocol/src/machine.rs", src).into_iter().map(|d| d.code).collect();
        assert_eq!(in_protocol, vec!["RL007", "RL007", "RL007"]);
        // The same imports are fine in a driver crate (PanicFree class).
        assert!(scan_file("crates/runtime/src/site.rs", src).is_empty());
    }

    #[test]
    fn sans_io_net_import_flagged_alongside_rl006() {
        // std::net in the protocol core violates both the general
        // no-sockets rule and the sans-I/O contract.
        let src = "use std::net::TcpStream;\n";
        let codes: Vec<_> =
            scan_file("crates/protocol/src/wire.rs", src).into_iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["RL006", "RL007"]);
    }

    #[test]
    fn sans_io_comments_not_flagged() {
        let src = "// drivers own std::time and std::thread\nlet x = 1;\n";
        assert!(scan_file("crates/protocol/src/lib.rs", src).is_empty());
    }

    #[test]
    fn runtime_panics_flagged() {
        let src = "let v = map.get(&k).unwrap();\nlet w = rx.recv().expect(\"closed\");\npanic!(\"boom\");\nunreachable!(\"no\");\n";
        let codes: Vec<_> =
            scan_file("crates/runtime/src/site.rs", src).into_iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["RL008", "RL008", "RL008", "RL008"]);
        // The same source is not a determinism concern elsewhere.
        assert!(scan_file("crates/sim/src/engine.rs", src).is_empty());
    }

    #[test]
    fn runtime_panics_in_cfg_test_not_flagged() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn after() { y.unwrap(); }\n";
        let codes: Vec<_> =
            scan_file("crates/net/src/tcp.rs", src).into_iter().map(|d| d.code).collect();
        // Only the post-module unwrap fires.
        assert_eq!(codes, vec!["RL008"]);
    }

    #[test]
    fn runtime_panic_allow_comment_honored() {
        let src = "// replint: allow(RL008) -- lock poisoning is fatal by design\nlet g = mu.lock().unwrap();\n";
        assert!(scan_file("crates/runtime/src/cluster.rs", src).is_empty());
    }

    #[test]
    fn reactor_blocking_calls_flagged() {
        let src = "let (s, _) = listener.accept()?;\nlet n = stream.read(&mut buf)?;\nstream.write_all(&bytes)?;\nlet msg = read_msg(&mut conn)?;\n";
        let codes: Vec<_> =
            scan_file("crates/runtime/src/reactor.rs", src).into_iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["RL009", "RL009", "RL009", "RL009"]);
        // The same calls are legitimate in the threaded runtime.
        assert!(scan_file("crates/runtime/src/tcp.rs", src).is_empty());
    }

    #[test]
    fn reactor_allow_comment_honored() {
        let src =
            "// replint: allow(RL009) -- nonblocking fd: returns WouldBlock\nstream.read(buf)\n";
        assert!(scan_file("crates/runtime/src/reactor.rs", src).is_empty());
    }

    #[test]
    fn reactor_helper_calls_not_flagged() {
        // Calls routed through the sanctioned helpers don't match the
        // dotted patterns, and nonblocking epoll/buffer machinery is
        // untouched.
        let src = "let n = read_some(&mut c.stream, &mut scratch)?;\nwrite_some(&mut c.stream, chunk)?;\nepoll.wait(&mut events, TICK_MS)?;\nc.reader.feed(&scratch[..n]);\n";
        assert!(scan_file("crates/runtime/src/reactor.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_not_flagged() {
        let src = "let v = map.get(&k).unwrap_or(&0);\nlet w = o.unwrap_or_else(Vec::new);\nlet x = r.expect_err(\"want failure\");\n";
        assert!(scan_file("crates/runtime/src/proc.rs", src).is_empty());
    }

    #[test]
    fn runtime_sleep_flagged_outside_policy() {
        let src = "std::thread::sleep(Duration::from_millis(5));\nthread::sleep(backoff);\n";
        let codes: Vec<_> =
            scan_file("crates/runtime/src/tcp.rs", src).into_iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["RL010", "RL010"]);
        // The policy module is the sanctioned home of the real sleep.
        assert!(scan_file("crates/runtime/src/policy.rs", src).is_empty());
        // Other runtime crates (repl-net) are out of RL010's scope.
        assert!(scan_file("crates/net/src/frame.rs", src).is_empty());
        // And so are the deterministic crates (no thread::sleep rule there).
        assert!(scan_file("crates/sim/src/engine.rs", src).is_empty());
    }

    #[test]
    fn hardcoded_retry_consts_flagged() {
        for decl in [
            "const DIAL_RETRY: Duration = Duration::from_millis(20);",
            "pub const CONNECT_TIMEOUT: Duration = Duration::from_millis(50);",
            "pub(crate) const BACKOFF_BASE: std::time::Duration = Duration::from_millis(5);",
        ] {
            let codes: Vec<_> = scan_file("crates/runtime/src/reactor.rs", decl)
                .into_iter()
                .map(|d| d.code)
                .collect();
            assert_eq!(codes, vec!["RL010"], "{decl}");
        }
    }

    #[test]
    fn unrelated_consts_and_durations_not_flagged() {
        // Not retry knobs: plain period constants, non-Duration consts
        // with knob-ish names, and Duration expressions in ordinary code.
        let src = "const TICK: Duration = Duration::from_millis(1);\n\
                   const MAX_RETRIES: u32 = 5;\n\
                   let d = Duration::from_millis(ms);\n";
        assert!(scan_file("crates/runtime/src/site.rs", src).is_empty());
    }

    #[test]
    fn timing_in_cfg_test_not_flagged() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::sleep(D); }\n}\n";
        assert!(scan_file("crates/runtime/src/link.rs", src).is_empty());
    }

    #[test]
    fn timing_allow_comment_honored() {
        let src = "// replint: allow(RL010) -- test-only heal wait\nstd::thread::sleep(HEAL);\n";
        assert!(scan_file("crates/runtime/src/cluster.rs", src).is_empty());
        let const_src =
            "const WARMUP_TIMEOUT: Duration = Duration::ZERO; // replint: allow(RL010)\n";
        assert!(scan_file("crates/runtime/src/proc.rs", const_src).is_empty());
    }

    #[test]
    fn lock_manager_flagged_in_mvcc_files() {
        let src = "use crate::lock::LockManager;\nfn f(locks: &LockManager) { locks.request(t, i, LockMode::Shared); }\n";
        for path in ["crates/storage/src/mvcc.rs", "crates/storage/src/snapshot.rs"] {
            let codes: Vec<_> = scan_file(path, src).into_iter().map(|d| d.code).collect();
            assert_eq!(codes, vec!["RL011", "RL011"], "{path}");
        }
        // Doc comments may *discuss* the lock manager (this is how the
        // real files document the rule itself).
        let doc = "//! The read path never touches the LockManager.\nfn f() {}\n";
        assert!(scan_file("crates/storage/src/mvcc.rs", doc).is_empty());
        // The same tokens in any other determinism-class file are fine.
        assert!(scan_file("crates/storage/src/lock.rs", src).is_empty());
        assert!(scan_file("crates/sim/src/engine.rs", src).is_empty());
    }

    #[test]
    fn store_rl011_scoped_to_read_snapshot() {
        let src = "\
impl Store {
    pub fn commit(&mut self) {
        self.locks.release_all(t);
    }
    pub fn read_snapshot(&self, snap: SnapshotId, item: ItemId) -> R {
        let g = self.locks.request(t, item, LockMode::Shared);
        g
    }
    pub fn abort(&mut self) {
        self.locks.release_all(t);
    }
}
";
        let diags = scan_file("crates/storage/src/store.rs", src);
        let flagged: Vec<u32> = diags
            .iter()
            .map(|d| match &d.witness {
                Witness::Source { line, .. } => *line,
                _ => 0,
            })
            .collect();
        // Only the access inside `fn read_snapshot` (line 6) is flagged;
        // the 2PL commit/abort paths keep their lock manager.
        assert_eq!(flagged, vec![6]);
        assert_eq!(diags[0].code, "RL011");
    }

    #[test]
    fn rl011_allow_comment_and_cfg_test_honored() {
        let src = "// replint: allow(RL011) -- asserting lock-freedom via the trace\nfn f(m: &LockManager) {}\n";
        assert!(scan_file("crates/storage/src/snapshot.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t(m: &LockManager) {}\n}\n";
        assert!(scan_file("crates/storage/src/mvcc.rs", test_src).is_empty());
    }

    #[test]
    fn raw_transport_send_flagged_outside_funnel() {
        let src = "let s = self.raw.try_send(from, to, seq, &payload);\n\
                   let b = wire.try_send_batch(from, to, first, &payloads);\n";
        let codes: Vec<_> =
            scan_file("crates/runtime/src/site.rs", src).into_iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["RL012", "RL012"]);
        let codes: Vec<_> =
            scan_file("crates/runtime/src/reactor.rs", src).into_iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["RL012", "RL012"]);
    }

    #[test]
    fn raw_transport_send_sanctioned_in_funnel_files() {
        let src = "let s = self.raw.try_send(from, to, seq, &payload);\n";
        // The outbox funnel itself and the fault shim below it.
        assert!(scan_file("crates/runtime/src/transport.rs", src).is_empty());
        assert!(scan_file("crates/runtime/src/nemesis.rs", src).is_empty());
        // Other crates (the channel cluster's mpsc try_send, say) are
        // out of RL012's scope entirely.
        assert!(scan_file("crates/core/src/engine/mod.rs", src).is_empty());
    }

    #[test]
    fn rl012_allow_comment_and_cfg_test_honored() {
        let src = "// replint: allow(RL012) -- trait forwarding, no outbox here\n\
                   (**self).try_send(from, to, seq, payload)\n";
        assert!(scan_file("crates/runtime/src/reactor.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { raw.try_send(f, t, s, &p); }\n}\n";
        assert!(scan_file("crates/runtime/src/tcp.rs", test_src).is_empty());
    }
}
