//! Seeded-mutation tests: the model checker must *catch* planted bugs.
//!
//! A verifier that never fails is indistinguishable from one that never
//! looks. Each test seeds a known protocol mutation
//! ([`repl_protocol::SeededBug`]), asserts the checker reports the
//! expected diagnostic code, and replays the shrunk counterexample to
//! prove the witness actually reproduces the violation from the initial
//! state.

use repl_analysis::diag::Witness;
use repl_analysis::mc::{check_scenario, replay, Config, Finding, Scenario, Topology};
use repl_protocol::{ProtocolId, SeededBug};

/// Run the checker, assert it reports `code`, and replay the shrunk
/// trace twice to prove the witness is deterministic and reproducing.
fn assert_caught(scenario: Scenario, code: &'static str) -> Finding {
    let report = check_scenario(&scenario, &Config::default()).expect("explore");
    assert!(!report.stats.truncated, "{}: truncated", scenario.label());
    let finding = report
        .findings
        .iter()
        .find(|f| f.diagnostic.code == code)
        .unwrap_or_else(|| {
            panic!(
                "{}: expected {code}, got {:?}",
                scenario.label(),
                report.findings.iter().map(|f| f.diagnostic.code).collect::<Vec<_>>()
            )
        })
        .clone();
    let Witness::McTrace { steps } = &finding.diagnostic.witness else {
        panic!("{}: finding carries no trace witness", scenario.label());
    };
    assert_eq!(steps.len(), finding.trace.len());
    for _ in 0..2 {
        let r = replay(&scenario, &finding.trace).expect("replay");
        assert!(
            r.codes.contains(code),
            "{}: shrunk trace {:?} does not reproduce {code} (got {:?})",
            scenario.label(),
            steps,
            r.codes
        );
        assert_eq!(r.executed, finding.trace, "shrunk trace must replay fully enabled");
    }
    // 1-minimality: dropping any single step stops the reproduction.
    for i in 0..finding.trace.len() {
        let mut candidate = finding.trace.clone();
        candidate.remove(i);
        let r = replay(&scenario, &candidate).expect("replay");
        assert!(
            !(r.codes.contains(code) && r.executed.len() < finding.trace.len()),
            "{}: trace not 1-minimal, step {i} is removable",
            scenario.label()
        );
    }
    finding
}

/// DAG(WT): dropping the forward-down-tree step strands downstream
/// replicas, which the convergence oracle sees at quiescence.
#[test]
fn skip_forward_is_caught_as_divergence() {
    let mut s = Scenario::new(ProtocolId::DagWt, Topology::Chain, 3, 2);
    s.bug = Some(SeededBug::SkipForward);
    let finding = assert_caught(s, "MC001");
    assert!(!finding.trace.is_empty());
}

/// DAG(T): replacing the §3.2.3 minimum-timestamp rule with greedy
/// first-non-empty lets a later transaction's subtransaction overtake
/// an earlier one's on the merged path, which a local observer sees as
/// a non-serializable snapshot.
#[test]
fn skip_min_timestamp_is_caught_as_serializability_violation() {
    let mut s = Scenario::new(ProtocolId::DagT, Topology::Chain, 3, 2);
    s.heartbeat_budget = 1;
    s.bug = Some(SeededBug::SkipMinTimestamp);
    let finding = assert_caught(s, "MC002");
    assert!(!finding.trace.is_empty());
}

/// Without a seeded bug the same scenarios are clean — the mutation
/// signal comes from the mutation, not the harness.
#[test]
fn unmutated_scenarios_stay_clean() {
    for s in [
        Scenario::new(ProtocolId::DagWt, Topology::Chain, 3, 2),
        Scenario::new(ProtocolId::DagT, Topology::Chain, 3, 2),
    ] {
        let report = check_scenario(&s, &Config::default()).expect("explore");
        assert!(!report.stats.truncated, "{}: truncated", s.label());
        assert!(
            report.findings.is_empty(),
            "{}: unexpected findings {:?}",
            s.label(),
            report.findings.iter().map(|f| f.diagnostic.code).collect::<Vec<_>>()
        );
        assert!(report.stats.quiescent_states > 0, "{}: never quiesced", s.label());
    }
}
