//! Property tests: every placement the §5.2 workload generator produces
//! lints clean, and seeded corruptions (cycle edge, dropped backedge,
//! reparented tree node) are each flagged with the right code and
//! witness.

use proptest::prelude::*;

use repl_analysis::lint::{
    check_backedge_set, check_copy_graph, check_tree, find_cycle, lint_scenario, LintConfig,
    LintProtocol, LintTree,
};
use repl_analysis::{has_errors, Severity, Witness};
use repl_copygraph::{BackEdgeSet, CopyGraph, PropagationTree};
use repl_workload::{build_placement, TableOneParams};

fn defaults(protocol: LintProtocol) -> LintConfig {
    LintConfig {
        protocol,
        tree: LintTree::Chain,
        network_latency_us: 150,
        deadlock_timeout_us: 50_000,
        retry_backoff_us: 5_000,
        epoch_period_us: 50_000,
        crash_faults: false,
    }
}

fn table(num_sites: u32, replication_prob: f64, backedge_prob: f64) -> TableOneParams {
    TableOneParams {
        num_sites,
        num_items: 40,
        replication_prob,
        backedge_prob,
        ..Default::default()
    }
}

proptest! {
    /// Generated placements lint clean under every cycle-tolerant
    /// protocol, for arbitrary backedge probability.
    #[test]
    fn workload_placements_lint_clean(
        m in 3u32..12,
        r in 0.0f64..1.0,
        b in 0.0f64..1.0,
        seed in 0u64..30,
    ) {
        let placement = build_placement(&table(m, r, b), seed);
        for protocol in [
            LintProtocol::BackEdge,
            LintProtocol::Psl,
            LintProtocol::Eager,
            LintProtocol::NaiveLazy,
        ] {
            let diags = lint_scenario(&placement, &defaults(protocol));
            prop_assert!(diags.is_empty(), "{protocol:?}: {diags:?}");
        }
    }

    /// With backedge probability zero the generator only replicates
    /// "forward", so the DAG protocols lint clean too.
    #[test]
    fn forward_placements_lint_clean_for_dag_protocols(
        m in 3u32..12,
        r in 0.0f64..1.0,
        seed in 0u64..30,
    ) {
        let placement = build_placement(&table(m, r, 0.0), seed);
        for protocol in [LintProtocol::DagWt, LintProtocol::DagT] {
            let diags = lint_scenario(&placement, &defaults(protocol));
            prop_assert!(diags.is_empty(), "{protocol:?}: {diags:?}");
        }
    }

    /// Corruption 1: add an item whose primary/replica pair reverses an
    /// existing copy-graph edge, closing a cycle. The DAG lint must
    /// produce RA001 with a genuine cycle as witness.
    #[test]
    fn injected_cycle_edge_flagged(
        m in 3u32..12,
        seed in 0u64..30,
    ) {
        let mut placement = build_placement(&table(m, 0.5, 0.0), seed);
        let graph = CopyGraph::from_placement(&placement);
        prop_assume!(graph.edge_count() > 0);
        let (u, v, _) = graph.edges()[0];
        placement.add_item(v, &[u]); // reverse edge: v -> u closes a cycle

        let diags = lint_scenario(&placement, &defaults(LintProtocol::DagWt));
        prop_assert!(has_errors(&diags));
        let ra001 = diags.iter().find(|d| d.code == "RA001").expect("RA001 expected");
        prop_assert_eq!(ra001.severity, Severity::Error);
        match &ra001.witness {
            Witness::Cycle(cycle) => {
                // The witness must be a real cycle of the corrupted graph.
                let corrupt = CopyGraph::from_placement(&placement);
                prop_assert!(cycle.len() >= 2);
                for w in cycle.windows(2) {
                    prop_assert!(corrupt.has_edge(w[0], w[1]), "{cycle:?}");
                }
                prop_assert!(corrupt.has_edge(*cycle.last().unwrap(), cycle[0]), "{cycle:?}");
            }
            w => prop_assert!(false, "wrong witness: {w:?}"),
        }
    }

    /// Corruption 2: delete one edge from a valid minimal backedge set.
    /// Minimality guarantees the remaining set leaves a cycle unbroken,
    /// so RA004 must fire with a cycle witness.
    #[test]
    fn removed_backedge_flagged(
        m in 3u32..12,
        r in 0.3f64..1.0,
        seed in 0u64..30,
    ) {
        let placement = build_placement(&table(m, r, 1.0), seed);
        let graph = CopyGraph::from_placement(&placement);
        let full = BackEdgeSet::by_site_order(&graph);
        prop_assume!(!full.is_empty());

        let mut edges = full.edges().to_vec();
        edges.remove(0);
        let broken = BackEdgeSet::from_edges(edges);

        let diags = check_backedge_set(&graph, &broken);
        let ra004 = diags.iter().find(|d| d.code == "RA004").expect("RA004 expected");
        prop_assert_eq!(ra004.severity, Severity::Error);
        match &ra004.witness {
            Witness::Cycle(cycle) => {
                let dag = broken.dag_of(&graph);
                for w in cycle.windows(2) {
                    prop_assert!(dag.has_edge(w[0], w[1]), "{cycle:?}");
                }
                prop_assert!(dag.has_edge(*cycle.last().unwrap(), cycle[0]), "{cycle:?}");
            }
            w => prop_assert!(false, "wrong witness: {w:?}"),
        }
        // The intact set passes.
        prop_assert!(check_backedge_set(&graph, &full).iter().all(|d| d.code != "RA004"));
    }

    /// Corruption 3: reparent a tree node to a root by dropping every
    /// constraint targeting it. Each dropped constraint must come back as
    /// an RA002 ancestor-property violation naming that edge.
    #[test]
    fn reparented_tree_node_flagged(
        m in 3u32..12,
        seed in 0u64..30,
    ) {
        let placement = build_placement(&table(m, 0.6, 0.0), seed);
        let graph = CopyGraph::from_placement(&placement);
        let constraints: Vec<_> = graph.edges().into_iter().map(|(a, b, _)| (a, b)).collect();
        let order = graph.topo_order().expect("b=0 placements are acyclic");
        // Pick the topologically-last site with a constraint parent: once
        // it is (mis)attached as a root, no later node's splice can
        // reparent it, so the corruption is guaranteed to stick.
        let Some(&victim) = order
            .iter()
            .rev()
            .find(|site| constraints.iter().any(|&(_, v)| v == **site))
        else {
            return Ok(()); // no edges: nothing to corrupt
        };
        let pruned: Vec<_> =
            constraints.iter().copied().filter(|&(_, v)| v != victim).collect();
        let tree = PropagationTree::from_constraints(graph.num_sites(), &pruned, &order);

        let diags = check_tree(&tree, &constraints);
        let dropped: Vec<_> =
            constraints.iter().copied().filter(|&(_, v)| v == victim).collect();
        prop_assert_eq!(diags.len(), dropped.len(), "{diags:?}");
        for d in &diags {
            prop_assert_eq!(d.code, "RA002");
            prop_assert_eq!(d.severity, Severity::Error);
            match d.witness {
                Witness::Edge { from, to } => {
                    prop_assert_eq!(to, victim);
                    prop_assert!(dropped.contains(&(from, to)));
                }
                ref w => prop_assert!(false, "wrong witness: {w:?}"),
            }
        }
        // The uncorrupted tree passes.
        let clean = PropagationTree::from_constraints(graph.num_sites(), &constraints, &order);
        prop_assert!(check_tree(&clean, &constraints).is_empty());
    }

    /// `find_cycle` agrees with `is_dag` on arbitrary graphs.
    #[test]
    fn find_cycle_agrees_with_is_dag(
        n in 2u32..10,
        edges in prop::collection::vec((0u32..10, 0u32..10), 0..40),
    ) {
        use repl_types::SiteId;
        let mut g = CopyGraph::empty(n);
        for &(a, b) in &edges {
            let (a, b) = (a % n, b % n);
            if a != b {
                g.add_edge(SiteId(a), SiteId(b), 1);
            }
        }
        prop_assert_eq!(find_cycle(&g).is_some(), !g.is_dag());
        prop_assert_eq!(
            !check_copy_graph(&g, LintProtocol::DagWt).is_empty(),
            !g.is_dag()
        );
        // Cycle-tolerant protocols never get RA001.
        prop_assert!(check_copy_graph(&g, LintProtocol::BackEdge).is_empty());
    }
}
