//! Differential soundness check for the model checker's reductions.
//!
//! Sleep sets and state-fingerprint dedup are *transition* prunings:
//! every state reachable by the brute-force scheduler must still be
//! visited by the pruned one, and the two must agree on every verdict.
//! At tiny bounds we can afford the brute-force run, so we assert both
//! properties exactly: equal reachable-fingerprint sets, equal
//! diagnostic-code sets — for clean scenarios and for a violating one.

use std::collections::BTreeSet;

use repl_analysis::mc::{explore, Bounds, Config, Report, Scenario, Topology};
use repl_protocol::ProtocolId;

fn codes(report: &Report) -> BTreeSet<&'static str> {
    report.findings.iter().map(|f| f.diagnostic.code).collect()
}

fn differential(scenario: Scenario) {
    let pruned = explore(&scenario, &Config::default()).expect("pruned run");
    let brute =
        explore(&scenario, &Config { sleep_sets: false, dedup: false, bounds: Bounds::default() })
            .expect("brute-force run");
    let label = scenario.label();
    assert!(!pruned.stats.truncated, "{label}: pruned run truncated");
    assert!(!brute.stats.truncated, "{label}: brute-force run truncated");
    assert_eq!(
        pruned.fingerprints, brute.fingerprints,
        "{label}: pruning lost (or invented) reachable states"
    );
    assert_eq!(codes(&pruned), codes(&brute), "{label}: verdicts disagree");
    assert!(
        pruned.stats.transitions <= brute.stats.transitions,
        "{label}: pruning explored more transitions than brute force"
    );
}

#[test]
fn naive_lazy_fan_matches_brute_force() {
    differential(Scenario::new(ProtocolId::NaiveLazy, Topology::Fan, 2, 2));
    differential(Scenario::new(ProtocolId::NaiveLazy, Topology::Fan, 3, 2));
}

#[test]
fn dag_wt_chain_matches_brute_force() {
    differential(Scenario::new(ProtocolId::DagWt, Topology::Chain, 3, 2));
}

#[test]
fn dag_t_chain_matches_brute_force() {
    let mut s = Scenario::new(ProtocolId::DagT, Topology::Chain, 2, 2);
    s.heartbeat_budget = 1;
    differential(s);
}

#[test]
fn back_edge_cross_matches_brute_force() {
    differential(Scenario::new(ProtocolId::BackEdge, Topology::Cross, 3, 2));
}

/// The violating case must stay violating under pruning: NaiveLazy on
/// the cyclic cross placement is Example 1.1, and both schedulers must
/// rediscover its non-serializable history. Fingerprint sets are *not*
/// compared here — exploration stops at violating states, and the
/// pruned and brute-force searches reach violations along different
/// representative paths, so coverage beyond them legitimately differs.
/// The coverage-equality guarantee (asserted above) is for clean runs.
#[test]
fn naive_lazy_on_cyclic_graph_fails_either_way() {
    let scenario = Scenario::new(ProtocolId::NaiveLazy, Topology::Cross, 3, 2);
    let pruned = explore(&scenario, &Config::default()).expect("pruned run");
    let brute =
        explore(&scenario, &Config { sleep_sets: false, dedup: false, bounds: Bounds::default() })
            .expect("brute-force run");
    assert_eq!(codes(&pruned), codes(&brute), "verdicts disagree");
    assert!(
        pruned.findings.iter().any(|f| f.diagnostic.code == "MC002"),
        "expected the Example 1.1 serializability violation, got {:?}",
        codes(&pruned)
    );
}
