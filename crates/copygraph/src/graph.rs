//! The copy graph (§1.1) and its structural queries.

use std::collections::BTreeSet;

use repl_types::SiteId;

use crate::placement::DataPlacement;

/// Directed copy graph over sites.
///
/// An edge `si → sj` exists iff some item has its primary copy at `si` and
/// a secondary copy at `sj`. Edge weights count the items inducing the edge
/// — the "frequency with which an update has to be propagated along the
/// edge" proxy used by the weighted feedback-arc-set discussion in §4.2.
#[derive(Clone, Debug)]
pub struct CopyGraph {
    n: usize,
    /// adjacency: children (out-edges), kept sorted via BTreeSet
    children: Vec<BTreeSet<u32>>,
    /// adjacency: parents (in-edges)
    parents: Vec<BTreeSet<u32>>,
    /// weight[u] aligned with `children[u]` iteration order
    weight: Vec<Vec<u64>>,
}

impl CopyGraph {
    /// Build an empty graph over `n` sites.
    pub fn empty(n: u32) -> Self {
        CopyGraph {
            n: n as usize,
            children: vec![BTreeSet::new(); n as usize],
            parents: vec![BTreeSet::new(); n as usize],
            weight: vec![Vec::new(); n as usize],
        }
    }

    /// Derive the copy graph of a data placement.
    pub fn from_placement(p: &DataPlacement) -> Self {
        let mut g = CopyGraph::empty(p.num_sites());
        for item in p.items() {
            let primary = p.primary_of(item);
            for &replica in p.replicas_of(item) {
                g.add_edge(primary, replica, 1);
            }
        }
        g
    }

    /// Add (or reinforce) the edge `from → to` with additional weight `w`.
    ///
    /// # Panics
    /// On self-loops or out-of-range sites.
    pub fn add_edge(&mut self, from: SiteId, to: SiteId, w: u64) {
        assert_ne!(from, to, "copy graph has no self-loops");
        assert!(from.index() < self.n && to.index() < self.n);
        if self.children[from.index()].insert(to.0) {
            // Maintain weight alignment with the sorted child set.
            let pos =
                self.children[from.index()].iter().position(|&c| c == to.0).expect("just inserted");
            self.weight[from.index()].insert(pos, w);
            self.parents[to.index()].insert(from.0);
        } else {
            let pos = self.children[from.index()].iter().position(|&c| c == to.0).expect("present");
            self.weight[from.index()][pos] += w;
        }
    }

    /// Number of sites.
    pub fn num_sites(&self) -> u32 {
        self.n as u32
    }

    /// Out-neighbours (children) of `site`, ascending.
    pub fn children(&self, site: SiteId) -> impl Iterator<Item = SiteId> + '_ {
        self.children[site.index()].iter().map(|&c| SiteId(c))
    }

    /// In-neighbours (parents) of `site`, ascending.
    pub fn parents(&self, site: SiteId) -> impl Iterator<Item = SiteId> + '_ {
        self.parents[site.index()].iter().map(|&c| SiteId(c))
    }

    /// Number of parents of `site`.
    pub fn parent_count(&self, site: SiteId) -> usize {
        self.parents[site.index()].len()
    }

    /// True if the edge `from → to` exists.
    pub fn has_edge(&self, from: SiteId, to: SiteId) -> bool {
        self.children[from.index()].contains(&to.0)
    }

    /// Weight of edge `from → to` (0 if absent).
    pub fn edge_weight(&self, from: SiteId, to: SiteId) -> u64 {
        self.children[from.index()]
            .iter()
            .position(|&c| c == to.0)
            .map(|pos| self.weight[from.index()][pos])
            .unwrap_or(0)
    }

    /// All edges as `(from, to, weight)` triples.
    pub fn edges(&self) -> Vec<(SiteId, SiteId, u64)> {
        let mut out = Vec::new();
        for u in 0..self.n {
            for (pos, &v) in self.children[u].iter().enumerate() {
                out.push((SiteId(u as u32), SiteId(v), self.weight[u][pos]));
            }
        }
        out
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.children.iter().map(BTreeSet::len).sum()
    }

    /// A topological order of the sites, or `None` if the graph is cyclic.
    ///
    /// Kahn's algorithm with a min-heap tie-break, so the returned order is
    /// deterministic and, for DAGs derived from the paper's site-ordered
    /// placements, coincides with the natural site order.
    pub fn topo_order(&self) -> Option<Vec<SiteId>> {
        let mut indeg: Vec<usize> = (0..self.n).map(|v| self.parents[v].len()).collect();
        let mut ready: BTreeSet<u32> =
            (0..self.n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(&v) = ready.iter().next() {
            ready.remove(&v);
            order.push(SiteId(v));
            for &c in &self.children[v as usize] {
                indeg[c as usize] -= 1;
                if indeg[c as usize] == 0 {
                    ready.insert(c);
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }

    /// True iff the graph is acyclic — the precondition of the DAG(WT) and
    /// DAG(T) protocols.
    pub fn is_dag(&self) -> bool {
        self.topo_order().is_some()
    }

    /// Sites reachable from `from` (excluding `from` itself unless it lies
    /// on a cycle through itself, which cannot happen without self-loops).
    pub fn reachable_from(&self, from: SiteId) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        let mut stack = vec![from.index()];
        while let Some(u) = stack.pop() {
            for &c in &self.children[u] {
                if !seen[c as usize] {
                    seen[c as usize] = true;
                    stack.push(c as usize);
                }
            }
        }
        seen
    }

    /// Remove the edge `from → to` if present, returning its weight.
    pub fn remove_edge(&mut self, from: SiteId, to: SiteId) -> Option<u64> {
        let pos = self.children[from.index()].iter().position(|&c| c == to.0)?;
        self.children[from.index()].remove(&to.0);
        self.parents[to.index()].remove(&from.0);
        Some(self.weight[from.index()].remove(pos))
    }

    /// Sites with no parents — the *sources* that drive epoch increments in
    /// DAG(T) (§3.3).
    pub fn sources(&self) -> Vec<SiteId> {
        (0..self.n as u32).map(SiteId).filter(|s| self.parents[s.index()].is_empty()).collect()
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> u64 {
        self.weight.iter().flatten().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_types::ItemId;

    fn s(n: u32) -> SiteId {
        SiteId(n)
    }

    fn example_1_1() -> CopyGraph {
        let mut p = DataPlacement::new(3);
        p.add_item(s(0), &[s(1), s(2)]); // a
        p.add_item(s(1), &[s(2)]); // b
        CopyGraph::from_placement(&p)
    }

    #[test]
    fn placement_induces_expected_edges() {
        let g = example_1_1();
        assert!(g.has_edge(s(0), s(1)));
        assert!(g.has_edge(s(0), s(2)));
        assert!(g.has_edge(s(1), s(2)));
        assert!(!g.has_edge(s(2), s(0)));
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edge_weight(s(0), s(1)), 1);
    }

    #[test]
    fn weights_accumulate_per_item() {
        let mut p = DataPlacement::new(2);
        for _ in 0..5 {
            p.add_item(s(0), &[s(1)]);
        }
        let g = CopyGraph::from_placement(&p);
        assert_eq!(g.edge_weight(s(0), s(1)), 5);
        assert_eq!(g.total_weight(), 5);
        let _ = ItemId(0); // silence unused import lint paths
    }

    #[test]
    fn topo_order_of_dag() {
        let g = example_1_1();
        assert!(g.is_dag());
        assert_eq!(g.topo_order().unwrap(), vec![s(0), s(1), s(2)]);
        assert_eq!(g.sources(), vec![s(0)]);
    }

    #[test]
    fn cycle_detected() {
        // Example 4.1: two sites, each replicating the other's primary.
        let mut p = DataPlacement::new(2);
        p.add_item(s(0), &[s(1)]); // a
        p.add_item(s(1), &[s(0)]); // b
        let g = CopyGraph::from_placement(&p);
        assert!(!g.is_dag());
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn reachability() {
        let g = example_1_1();
        let r = g.reachable_from(s(0));
        assert!(!r[0] && r[1] && r[2]);
        let r = g.reachable_from(s(2));
        assert!(!r[0] && !r[1] && !r[2]);
    }

    #[test]
    fn remove_edge_roundtrip() {
        let mut g = example_1_1();
        assert_eq!(g.remove_edge(s(0), s(2)), Some(1));
        assert!(!g.has_edge(s(0), s(2)));
        assert_eq!(g.remove_edge(s(0), s(2)), None);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.parent_count(s(2)), 1);
    }

    #[test]
    fn parents_iterates_in_order() {
        let mut g = CopyGraph::empty(4);
        g.add_edge(s(2), s(3), 1);
        g.add_edge(s(0), s(3), 1);
        g.add_edge(s(1), s(3), 1);
        let ps: Vec<_> = g.parents(s(3)).collect();
        assert_eq!(ps, vec![s(0), s(1), s(2)]);
    }

    #[test]
    fn multi_source_topo() {
        let mut g = CopyGraph::empty(4);
        g.add_edge(s(0), s(2), 1);
        g.add_edge(s(1), s(2), 1);
        g.add_edge(s(2), s(3), 1);
        assert_eq!(g.sources(), vec![s(0), s(1)]);
        assert_eq!(g.topo_order().unwrap(), vec![s(0), s(1), s(2), s(3)]);
    }
}
