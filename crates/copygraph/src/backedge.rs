//! Backedge sets and feedback-arc-set heuristics (§4, §4.2).
//!
//! A set of edges is a *backedge set* if deleting them from the copy graph
//! breaks all cycles; §4 additionally assumes the set is **minimal**
//! (re-inserting any backedge creates a cycle), which guarantees that for
//! every backedge `si → sj` there is a path `sj ⇝ si` in the remaining DAG
//! — the property the BackEdge protocol's tree routing relies on.
//!
//! Choosing the *minimum-weight* backedge set is the (NP-hard) feedback
//! arc set problem [GJ79]; §4.2 points at approximation algorithms. This
//! module provides:
//!
//! * [`BackEdgeSet::by_site_order`] — the paper's experimental setup: with
//!   sites totally ordered, every edge `si → sj` with `j < i` is a
//!   backedge (§5.2);
//! * [`BackEdgeSet::greedy_fas`] — the Eades–Lin–Smyth "GR" heuristic,
//!   extended to weighted edges, followed by greedy minimalization;
//! * [`BackEdgeSet::minimalize`] — drop redundant backedges until the set
//!   is minimal.

use repl_types::SiteId;

use crate::graph::CopyGraph;

/// A set of backedges for some copy graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackEdgeSet {
    edges: Vec<(SiteId, SiteId)>,
}

impl BackEdgeSet {
    /// Build a backedge set from explicit edges. The caller asserts they
    /// exist in the graph; use [`BackEdgeSet::is_valid`] to check that the
    /// remainder is acyclic.
    pub fn from_edges(mut edges: Vec<(SiteId, SiteId)>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        BackEdgeSet { edges }
    }

    /// The paper's experimental definition (§5.2): given the natural total
    /// order on sites, an edge `si → sj` is a backedge iff `sj < si`.
    pub fn by_site_order(graph: &CopyGraph) -> Self {
        let edges = graph
            .edges()
            .into_iter()
            .filter(|(from, to, _)| to < from)
            .map(|(from, to, _)| (from, to))
            .collect();
        let mut set = BackEdgeSet::from_edges(edges);
        set.minimalize(graph);
        set
    }

    /// Eades–Lin–Smyth greedy heuristic for (weighted) feedback arc set:
    /// repeatedly peel sinks to the tail and sources to the head of a
    /// vertex sequence; when neither exists, move the vertex maximizing
    /// `w_out - w_in` to the head. Edges pointing backwards in the final
    /// sequence form the backedge set, which is then minimalized.
    pub fn greedy_fas(graph: &CopyGraph) -> Self {
        let n = graph.num_sites() as usize;
        let mut removed = vec![false; n];
        let mut head: Vec<u32> = Vec::new();
        let mut tail: Vec<u32> = Vec::new();
        let mut remaining = n;

        let out_w = |g: &CopyGraph, removed: &[bool], u: u32| -> (u64, usize) {
            let mut w = 0;
            let mut deg = 0;
            for c in g.children(SiteId(u)) {
                if !removed[c.index()] {
                    w += g.edge_weight(SiteId(u), c);
                    deg += 1;
                }
            }
            (w, deg)
        };
        let in_w = |g: &CopyGraph, removed: &[bool], u: u32| -> (u64, usize) {
            let mut w = 0;
            let mut deg = 0;
            for p in g.parents(SiteId(u)) {
                if !removed[p.index()] {
                    w += g.edge_weight(p, SiteId(u));
                    deg += 1;
                }
            }
            (w, deg)
        };

        while remaining > 0 {
            // Peel sinks.
            let mut progress = true;
            while progress {
                progress = false;
                for u in 0..n as u32 {
                    if !removed[u as usize] && out_w(graph, &removed, u).1 == 0 {
                        removed[u as usize] = true;
                        tail.push(u);
                        remaining -= 1;
                        progress = true;
                    }
                }
            }
            // Peel sources.
            let mut progress = true;
            while progress {
                progress = false;
                for u in 0..n as u32 {
                    if !removed[u as usize] && in_w(graph, &removed, u).1 == 0 {
                        removed[u as usize] = true;
                        head.push(u);
                        remaining -= 1;
                        progress = true;
                    }
                }
            }
            if remaining == 0 {
                break;
            }
            // Break a cycle: maximize w_out - w_in (ties by smaller id).
            let u = (0..n as u32)
                .filter(|&u| !removed[u as usize])
                .max_by_key(|&u| {
                    let o = out_w(graph, &removed, u).0 as i64;
                    let i = in_w(graph, &removed, u).0 as i64;
                    (o - i, std::cmp::Reverse(u))
                })
                .expect("remaining > 0");
            removed[u as usize] = true;
            head.push(u);
            remaining -= 1;
        }

        tail.reverse();
        head.extend(tail);
        let mut pos = vec![0usize; n];
        for (i, &u) in head.iter().enumerate() {
            pos[u as usize] = i;
        }
        let edges = graph
            .edges()
            .into_iter()
            .filter(|(from, to, _)| pos[to.index()] < pos[from.index()])
            .map(|(from, to, _)| (from, to))
            .collect();
        let mut set = BackEdgeSet::from_edges(edges);
        set.minimalize(graph);
        set
    }

    /// The backedges, sorted.
    pub fn edges(&self) -> &[(SiteId, SiteId)] {
        &self.edges
    }

    /// Number of backedges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when there are no backedges (the copy graph was already a DAG,
    /// in which case BackEdge degenerates to DAG(WT), §4.1).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// True if `from → to` is a backedge.
    pub fn contains(&self, from: SiteId, to: SiteId) -> bool {
        self.edges.binary_search(&(from, to)).is_ok()
    }

    /// The copy graph with the backedges removed — `Gdag` of §4.
    pub fn dag_of(&self, graph: &CopyGraph) -> CopyGraph {
        let mut g = graph.clone();
        for &(from, to) in &self.edges {
            g.remove_edge(from, to);
        }
        g
    }

    /// True iff removing this set makes the graph acyclic.
    pub fn is_valid(&self, graph: &CopyGraph) -> bool {
        self.dag_of(graph).is_dag()
    }

    /// True iff the set is minimal: re-inserting any single backedge into
    /// `Gdag` creates a cycle.
    pub fn is_minimal(&self, graph: &CopyGraph) -> bool {
        let dag = self.dag_of(graph);
        self.edges.iter().all(|&(from, to)| {
            // (from → to) closes a cycle iff `from` is reachable from `to`.
            dag.reachable_from(to)[from.index()]
        })
    }

    /// Greedily re-insert redundant backedges until the set is minimal.
    pub fn minimalize(&mut self, graph: &CopyGraph) {
        let mut dag = self.dag_of(graph);
        let mut kept = Vec::with_capacity(self.edges.len());
        // Heavier edges are reconsidered first so the weight removed tends
        // to shrink.
        let mut candidates = self.edges.clone();
        candidates.sort_by_key(|&(from, to)| std::cmp::Reverse(graph.edge_weight(from, to)));
        for (from, to) in candidates {
            if dag.reachable_from(to)[from.index()] {
                // Re-inserting would close a cycle: keep as a backedge.
                kept.push((from, to));
            } else {
                dag.add_edge(from, to, graph.edge_weight(from, to));
            }
        }
        kept.sort_unstable();
        self.edges = kept;
    }

    /// Total weight of the backedges in `graph` — the objective §4.2
    /// minimizes.
    pub fn weight(&self, graph: &CopyGraph) -> u64 {
        self.edges.iter().map(|&(from, to)| graph.edge_weight(from, to)).sum()
    }

    /// Constraint pairs for building the BackEdge propagation tree:
    /// `Gdag`'s edges plus the *reversed* backedges, so that each backedge
    /// target `sj` becomes a tree ancestor of its source `si` (§4.1).
    ///
    /// For a minimal backedge set this union is always acyclic: a reversed
    /// backedge `(sj, si)` is witnessed by a `sj ⇝ si` path in `Gdag`, so
    /// any cycle through reversed edges would already be a cycle in `Gdag`.
    pub fn augmented_constraints(&self, graph: &CopyGraph) -> Vec<(SiteId, SiteId)> {
        let dag = self.dag_of(graph);
        let mut constraints: Vec<(SiteId, SiteId)> =
            dag.edges().into_iter().map(|(u, v, _)| (u, v)).collect();
        constraints.extend(self.edges.iter().map(|&(from, to)| (to, from)));
        constraints.sort_unstable();
        constraints.dedup();
        constraints
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::DataPlacement;
    use crate::tree::PropagationTree;
    use proptest::prelude::*;

    fn s(n: u32) -> SiteId {
        SiteId(n)
    }

    fn example_4_1() -> CopyGraph {
        let mut p = DataPlacement::new(2);
        p.add_item(s(0), &[s(1)]);
        p.add_item(s(1), &[s(0)]);
        CopyGraph::from_placement(&p)
    }

    #[test]
    fn site_order_backedges_on_example_4_1() {
        let g = example_4_1();
        let b = BackEdgeSet::by_site_order(&g);
        assert_eq!(b.edges(), &[(s(1), s(0))]);
        assert!(b.is_valid(&g));
        assert!(b.is_minimal(&g));
        assert!(b.contains(s(1), s(0)));
        assert!(!b.contains(s(0), s(1)));
    }

    #[test]
    fn dag_graph_has_no_backedges() {
        let mut g = CopyGraph::empty(3);
        g.add_edge(s(0), s(1), 1);
        g.add_edge(s(1), s(2), 1);
        assert!(BackEdgeSet::by_site_order(&g).is_empty());
        assert!(BackEdgeSet::greedy_fas(&g).is_empty());
    }

    #[test]
    fn minimalize_drops_redundant_edges() {
        // Only 1->0 closes a cycle; 2->0 does not (no path 0 ⇝ 2 after
        // removing both), so a naive order-based set {1->0, 2->0} over this
        // graph must shrink.
        let mut g = CopyGraph::empty(3);
        g.add_edge(s(0), s(1), 1);
        g.add_edge(s(1), s(0), 1);
        g.add_edge(s(2), s(0), 1);
        let b = BackEdgeSet::by_site_order(&g);
        assert!(b.is_valid(&g) && b.is_minimal(&g));
        assert_eq!(b.edges(), &[(s(1), s(0))]);
    }

    #[test]
    fn greedy_fas_prefers_light_edges() {
        // Cycle 0 -> 1 -> 2 -> 0 with weights 10, 10, 1: the weight-1 edge
        // should be the backedge.
        let mut g = CopyGraph::empty(3);
        g.add_edge(s(0), s(1), 10);
        g.add_edge(s(1), s(2), 10);
        g.add_edge(s(2), s(0), 1);
        let b = BackEdgeSet::greedy_fas(&g);
        assert!(b.is_valid(&g));
        assert_eq!(b.weight(&g), 1);
        assert_eq!(b.edges(), &[(s(2), s(0))]);
    }

    #[test]
    fn augmented_constraints_feed_tree_construction() {
        let g = example_4_1();
        let b = BackEdgeSet::by_site_order(&g);
        let constraints = b.augmented_constraints(&g);
        // Gdag edge (0,1) plus reversed backedge (0,1) dedup to one.
        assert_eq!(constraints, vec![(s(0), s(1))]);
        let dag = b.dag_of(&g);
        let order = {
            // Constraints are acyclic; a topo order of Gdag works here.
            dag.topo_order().unwrap()
        };
        let t = PropagationTree::from_constraints(2, &constraints, &order);
        t.verify(&constraints).unwrap();
        // Backedge target s0 is an ancestor of source s1.
        assert!(t.is_ancestor(s(0), s(1)));
    }

    fn random_graph(n: u32, edges: &[(u32, u32, u64)]) -> CopyGraph {
        let mut g = CopyGraph::empty(n);
        for &(a, b, w) in edges {
            let (a, b) = (a % n, b % n);
            if a != b {
                g.add_edge(SiteId(a), SiteId(b), w.max(1));
            }
        }
        g
    }

    proptest! {
        /// Both heuristics always produce valid, minimal backedge sets on
        /// arbitrary (possibly cyclic) graphs.
        #[test]
        fn heuristics_valid_and_minimal(
            n in 2u32..10,
            edges in prop::collection::vec((0u32..10, 0u32..10, 1u64..20), 0..50),
        ) {
            let g = random_graph(n, &edges);
            for b in [BackEdgeSet::by_site_order(&g), BackEdgeSet::greedy_fas(&g)] {
                prop_assert!(b.is_valid(&g));
                prop_assert!(b.is_minimal(&g));
            }
        }

        /// The greedy FAS heuristic never removes more weight than the
        /// order-based set (it is allowed to tie).
        #[test]
        fn greedy_weight_competitive(
            n in 2u32..10,
            edges in prop::collection::vec((0u32..10, 0u32..10, 1u64..20), 0..50),
        ) {
            let g = random_graph(n, &edges);
            let by_order = BackEdgeSet::by_site_order(&g).weight(&g);
            let greedy = BackEdgeSet::greedy_fas(&g).weight(&g);
            // Not a theorem for the raw heuristic, but with minimalization
            // both are local optima; we only assert validity-preserving
            // boundedness: greedy never exceeds total weight and both are
            // valid. Record a soft expectation to catch regressions.
            prop_assert!(greedy <= g.total_weight());
            prop_assert!(by_order <= g.total_weight());
        }

        /// Augmented constraints always admit a propagation tree in which
        /// every backedge target is an ancestor of its source.
        #[test]
        fn augmented_constraints_always_realizable(
            n in 2u32..10,
            edges in prop::collection::vec((0u32..10, 0u32..10, 1u64..5), 0..40),
        ) {
            let g = random_graph(n, &edges);
            let b = BackEdgeSet::greedy_fas(&g);
            let constraints = b.augmented_constraints(&g);
            // Build a graph over the constraints to get a topo order.
            let mut cg = CopyGraph::empty(n);
            for &(u, v) in &constraints {
                cg.add_edge(u, v, 1);
            }
            let order = cg.topo_order().expect("augmented constraints are acyclic");
            let t = PropagationTree::from_constraints(n, &constraints, &order);
            prop_assert!(t.verify(&constraints).is_ok());
            for &(from, to) in b.edges() {
                prop_assert!(t.is_ancestor(to, from));
            }
        }
    }
}
