//! Data placement: primary sites and replica sets.

use repl_types::{ItemId, SiteId};

/// Where every item's primary copy and replicas live.
///
/// Items are added one at a time; the placement then answers the questions
/// the protocols ask: who is the primary site of an item, which sites hold
/// copies, which items have a copy at a given site.
#[derive(Clone, Debug)]
pub struct DataPlacement {
    num_sites: u32,
    /// item index → primary site
    primary: Vec<SiteId>,
    /// item index → replica sites (sorted, never contains the primary)
    replicas: Vec<Vec<SiteId>>,
    /// site index → items with a copy (primary or replica) at that site
    items_at: Vec<Vec<ItemId>>,
    /// site index → items whose primary copy is at that site
    primaries_at: Vec<Vec<ItemId>>,
}

impl DataPlacement {
    /// Create an empty placement over `num_sites` sites.
    pub fn new(num_sites: u32) -> Self {
        DataPlacement {
            num_sites,
            primary: Vec::new(),
            replicas: Vec::new(),
            items_at: vec![Vec::new(); num_sites as usize],
            primaries_at: vec![Vec::new(); num_sites as usize],
        }
    }

    /// Number of sites in the system.
    pub fn num_sites(&self) -> u32 {
        self.num_sites
    }

    /// Iterate over all site ids.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> {
        (0..self.num_sites).map(SiteId)
    }

    /// Number of distinct logical items (not counting replicas).
    pub fn num_items(&self) -> u32 {
        self.primary.len() as u32
    }

    /// Iterate over all item ids.
    pub fn items(&self) -> impl Iterator<Item = ItemId> {
        (0..self.num_items()).map(ItemId)
    }

    /// Add an item with its primary copy at `primary` and replicas at
    /// `replicas`, returning the new item's id.
    ///
    /// # Panics
    /// If `primary` or any replica site is out of range, or a replica
    /// duplicates the primary.
    pub fn add_item(&mut self, primary: SiteId, replicas: &[SiteId]) -> ItemId {
        assert!(primary.0 < self.num_sites, "primary site out of range");
        let id = ItemId(self.primary.len() as u32);
        let mut reps: Vec<SiteId> = replicas.to_vec();
        reps.sort_unstable();
        reps.dedup();
        assert!(!reps.contains(&primary), "replica set must not contain the primary site");
        for r in &reps {
            assert!(r.0 < self.num_sites, "replica site out of range");
            self.items_at[r.index()].push(id);
        }
        self.items_at[primary.index()].push(id);
        self.primaries_at[primary.index()].push(id);
        self.primary.push(primary);
        self.replicas.push(reps);
        id
    }

    /// The primary site of `item`.
    pub fn primary_of(&self, item: ItemId) -> SiteId {
        self.primary[item.index()]
    }

    /// The replica sites of `item` (excluding the primary), sorted.
    pub fn replicas_of(&self, item: ItemId) -> &[SiteId] {
        &self.replicas[item.index()]
    }

    /// True if `site` stores a copy (primary or secondary) of `item`.
    pub fn has_copy(&self, site: SiteId, item: ItemId) -> bool {
        self.primary_of(item) == site || self.replicas[item.index()].binary_search(&site).is_ok()
    }

    /// All items with a copy at `site`.
    pub fn items_at(&self, site: SiteId) -> &[ItemId] {
        &self.items_at[site.index()]
    }

    /// All items whose primary copy is at `site` (the only items a
    /// transaction originating at `site` may update, §1.1).
    pub fn primaries_at(&self, site: SiteId) -> &[ItemId] {
        &self.primaries_at[site.index()]
    }

    /// Total number of replicas in the system (secondary copies only).
    pub fn total_replicas(&self) -> usize {
        self.replicas.iter().map(Vec::len).sum()
    }

    /// A compact single-line description of the placement, parsable by
    /// [`DataPlacement::from_spec`], used to hand a placement to a
    /// `repld` process on its command line or config file. Format:
    /// `sites|primary[:r1,r2]|primary[:r1]|…` with one `|`-separated
    /// field per item in item-id order, e.g. Example 1.1 is `3|0:1,2|1:2`.
    pub fn to_spec(&self) -> String {
        let mut out = self.num_sites().to_string();
        for item in self.items() {
            out.push('|');
            out.push_str(&self.primary_of(item).0.to_string());
            let reps = self.replicas_of(item);
            if !reps.is_empty() {
                out.push(':');
                let list: Vec<String> = reps.iter().map(|s| s.0.to_string()).collect();
                out.push_str(&list.join(","));
            }
        }
        out
    }

    /// Parse a spec produced by [`DataPlacement::to_spec`].
    pub fn from_spec(spec: &str) -> Result<DataPlacement, String> {
        let mut fields = spec.split('|');
        let sites: u32 = fields
            .next()
            .ok_or("empty placement spec")?
            .trim()
            .parse()
            .map_err(|_| format!("bad site count in placement spec {spec:?}"))?;
        if sites == 0 {
            return Err("placement spec has zero sites".into());
        }
        let mut p = DataPlacement::new(sites);
        for field in fields {
            let (primary, reps) = match field.split_once(':') {
                Some((p, r)) => (p, Some(r)),
                None => (field, None),
            };
            let primary: u32 = primary
                .trim()
                .parse()
                .map_err(|_| format!("bad primary site {primary:?} in placement spec"))?;
            let mut replicas = Vec::new();
            if let Some(reps) = reps {
                for r in reps.split(',') {
                    let r: u32 = r
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad replica site {r:?} in placement spec"))?;
                    replicas.push(SiteId(r));
                }
            }
            if primary >= sites || replicas.iter().any(|r| r.0 >= sites) {
                return Err(format!("site out of range in placement field {field:?}"));
            }
            if replicas.contains(&SiteId(primary)) {
                return Err(format!("replica equals primary in placement field {field:?}"));
            }
            p.add_item(SiteId(primary), &replicas);
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_1_1_placement() {
        // Figure 1: item a primary at s1 (here s0), replicas s2, s3
        // (s1, s2); item b primary at s2 (s1), replica s3 (s2).
        let mut p = DataPlacement::new(3);
        let a = p.add_item(SiteId(0), &[SiteId(1), SiteId(2)]);
        let b = p.add_item(SiteId(1), &[SiteId(2)]);
        assert_eq!(p.primary_of(a), SiteId(0));
        assert_eq!(p.replicas_of(a), &[SiteId(1), SiteId(2)]);
        assert_eq!(p.primary_of(b), SiteId(1));
        assert!(p.has_copy(SiteId(2), a));
        assert!(p.has_copy(SiteId(2), b));
        assert!(!p.has_copy(SiteId(0), b));
        assert_eq!(p.items_at(SiteId(2)), &[a, b]);
        assert_eq!(p.primaries_at(SiteId(1)), &[b]);
        assert_eq!(p.total_replicas(), 3);
    }

    #[test]
    fn replica_dedup_and_sort() {
        let mut p = DataPlacement::new(4);
        let x = p.add_item(SiteId(0), &[SiteId(3), SiteId(1), SiteId(3)]);
        assert_eq!(p.replicas_of(x), &[SiteId(1), SiteId(3)]);
    }

    #[test]
    #[should_panic(expected = "must not contain the primary")]
    fn replica_equal_to_primary_panics() {
        let mut p = DataPlacement::new(2);
        p.add_item(SiteId(0), &[SiteId(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_primary_panics() {
        let mut p = DataPlacement::new(2);
        p.add_item(SiteId(5), &[]);
    }

    #[test]
    fn spec_roundtrip() {
        let mut p = DataPlacement::new(3);
        p.add_item(SiteId(0), &[SiteId(1), SiteId(2)]);
        p.add_item(SiteId(1), &[SiteId(2)]);
        p.add_item(SiteId(2), &[]);
        assert_eq!(p.to_spec(), "3|0:1,2|1:2|2");
        let q = DataPlacement::from_spec(&p.to_spec()).unwrap();
        assert_eq!(q.to_spec(), p.to_spec());
        assert_eq!(q.num_sites(), 3);
        assert_eq!(q.replicas_of(ItemId(0)), &[SiteId(1), SiteId(2)]);
    }

    #[test]
    fn bad_specs_rejected() {
        for bad in ["", "x", "0", "2|5", "2|0:9", "2|0:0", "2|0:a"] {
            assert!(DataPlacement::from_spec(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn local_items_have_no_replicas() {
        let mut p = DataPlacement::new(2);
        let x = p.add_item(SiteId(1), &[]);
        assert!(p.replicas_of(x).is_empty());
        assert!(p.has_copy(SiteId(1), x));
        assert!(!p.has_copy(SiteId(0), x));
    }
}
