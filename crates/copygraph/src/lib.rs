//! Copy graphs, propagation trees and backedge computation.
//!
//! Section 1.1 of the paper defines the *copy graph*: vertices are sites,
//! with an edge `si → sj` iff some item has its primary copy at `si` and a
//! secondary copy at `sj`. Everything the DAG(WT), DAG(T) and BackEdge
//! protocols need to know about data placement is derived here:
//!
//! * [`placement::DataPlacement`] — which site holds the primary copy of
//!   each item and where its replicas live;
//! * [`graph::CopyGraph`] — the induced copy graph, with edge weights
//!   (number of items propagated along each edge), acyclicity testing and
//!   topological orders;
//! * [`tree::PropagationTree`] — the tree `T` of §2 with the *ancestor
//!   property* (if `sj` is a child of `si` in the copy graph then `sj` is a
//!   descendant of `si` in `T`), in both the chain form the paper's
//!   prototype used and a general branching form;
//! * [`backedge::BackEdgeSet`] — minimal backedge sets (§4) and the greedy
//!   weighted feedback-arc-set heuristic of §4.2 (the exact problem is
//!   NP-hard [GJ79]).

#![warn(missing_docs)]

pub mod backedge;
pub mod graph;
pub mod placement;
pub mod tree;

pub use backedge::BackEdgeSet;
pub use graph::CopyGraph;
pub use placement::DataPlacement;
pub use tree::PropagationTree;
