//! Propagation trees with the §2 ancestor property.
//!
//! DAG(WT) forwards updates along the edges of a tree `T` built from the
//! copy graph such that **if `sj` is a child of `si` in the copy graph,
//! then `sj` is a descendant of `si` in `T`**. The paper defers the
//! construction to the technical report; this module provides two:
//!
//! * [`PropagationTree::chain`] — the variant the paper's prototype used
//!   (§5.1): sites linked in a total order consistent with the DAG. Always
//!   valid, maximally deep.
//! * [`PropagationTree::general`] — a branching tree. Sites are processed
//!   in topological order; each is attached under its deepest
//!   constraint-ancestor, and when a site's constraint-ancestors sit on
//!   different branches the offending branch is spliced (re-parented)
//!   below the deeper one. Splicing a subtree under a constraint-ancestor
//!   never invalidates established constraints, because every *external*
//!   constraint-ancestor of the spliced subtree lies on the spliced root's
//!   former root-path, which is a prefix of the new one. The result is a
//!   forest in general (one tree per weakly-connected region).
//!
//! The same builder also serves the BackEdge protocol (§4.1), which needs
//! the *augmented* constraint set `Gdag ∪ {(sj, si) : (si, sj) ∈ B}` so
//! every backedge target is an ancestor of its source in `T`.

use repl_types::SiteId;

use crate::graph::CopyGraph;

/// Error returned when a propagation tree is requested for a cyclic graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NotADag;

impl std::fmt::Display for NotADag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "copy graph is cyclic; remove backedges first (§4)")
    }
}

impl std::error::Error for NotADag {}

/// A rooted forest over sites with the ancestor property.
#[derive(Clone, Debug)]
pub struct PropagationTree {
    parent: Vec<Option<u32>>,
    children: Vec<Vec<u32>>,
}

impl PropagationTree {
    /// Build the chain tree: sites linked in a topological order of the
    /// copy graph (§5.1: "connect sites that are adjacent to each other in
    /// some total order of the sites consistent with the DAG").
    pub fn chain(graph: &CopyGraph) -> Result<Self, NotADag> {
        let order = graph.topo_order().ok_or(NotADag)?;
        let n = graph.num_sites() as usize;
        let mut tree = PropagationTree { parent: vec![None; n], children: vec![Vec::new(); n] };
        for w in order.windows(2) {
            tree.attach(w[1], Some(w[0]));
        }
        Ok(tree)
    }

    /// Build a general (branching) tree satisfying the ancestor property
    /// for every copy-graph edge.
    pub fn general(graph: &CopyGraph) -> Result<Self, NotADag> {
        let order = graph.topo_order().ok_or(NotADag)?;
        let constraints = graph.edges().into_iter().map(|(u, v, _)| (u, v)).collect::<Vec<_>>();
        Ok(Self::from_constraints(graph.num_sites(), &constraints, &order))
    }

    /// Build a tree over `n` sites satisfying `ancestor(u, v)` for every
    /// `(u, v)` in `constraints`, processing sites in `order` (which must
    /// be a topological order of the constraint relation).
    ///
    /// # Panics
    /// If `order` is not a valid topological order of the constraints.
    pub fn from_constraints(n: u32, constraints: &[(SiteId, SiteId)], order: &[SiteId]) -> Self {
        let n = n as usize;
        assert_eq!(order.len(), n, "order must cover every site");
        let mut cparents: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in constraints {
            cparents[v.index()].push(u.0);
        }
        let mut pos = vec![usize::MAX; n];
        for (i, s) in order.iter().enumerate() {
            pos[s.index()] = i;
        }
        for &(u, v) in constraints {
            assert!(
                pos[u.index()] < pos[v.index()],
                "order is not topological for constraint {u:?} -> {v:?}"
            );
        }

        let mut tree = PropagationTree { parent: vec![None; n], children: vec![Vec::new(); n] };
        let mut placed = vec![false; n];
        for &v in order {
            let mut anchors: Vec<SiteId> = cparents[v.index()].iter().map(|&u| SiteId(u)).collect();
            anchors.sort_unstable();
            anchors.dedup();
            debug_assert!(anchors.iter().all(|a| placed[a.index()]));
            if anchors.is_empty() {
                tree.attach(v, None);
            } else {
                // Splice branches until every anchor lies on one root-path,
                // then attach v below the deepest anchor.
                loop {
                    let d =
                        *anchors.iter().max_by_key(|a| (tree.depth(**a), a.0)).expect("non-empty");
                    let stray =
                        anchors.iter().copied().find(|&u| u != d && !tree.is_ancestor(u, d));
                    match stray {
                        None => {
                            tree.attach(v, Some(d));
                            break;
                        }
                        Some(u) => tree.splice_under(u, d),
                    }
                }
            }
            placed[v.index()] = true;
        }
        tree
    }

    fn attach(&mut self, node: SiteId, parent: Option<SiteId>) {
        debug_assert!(self.parent[node.index()].is_none());
        if let Some(p) = parent {
            self.parent[node.index()] = Some(p.0);
            self.children[p.index()].push(node.0);
        }
    }

    /// Re-parent the topmost ancestor of `u` that is not an ancestor-or-self
    /// of `d`, placing that whole branch under `d`. Precondition: `u` and
    /// `d` are incomparable.
    fn splice_under(&mut self, u: SiteId, d: SiteId) {
        debug_assert!(!self.is_ancestor(u, d) && !self.is_ancestor(d, u) && u != d);
        let d_path: Vec<u32> = self.root_path(d).into_iter().map(|s| s.0).collect();
        // Walk up from u; x = highest node on the path not on d's root-path.
        let mut x = u.0;
        let mut cur = u.0;
        loop {
            if !d_path.contains(&cur) && cur != d.0 {
                x = cur;
            }
            match self.parent[cur as usize] {
                Some(p) => cur = p,
                None => break,
            }
        }
        // Detach x from its old parent and hang it under d.
        if let Some(old) = self.parent[x as usize] {
            self.children[old as usize].retain(|&c| c != x);
        }
        self.parent[x as usize] = Some(d.0);
        self.children[d.index()].push(x);
    }

    /// The parent of `site` in the tree, if any.
    pub fn parent(&self, site: SiteId) -> Option<SiteId> {
        self.parent[site.index()].map(SiteId)
    }

    /// The children of `site` in the tree.
    pub fn children(&self, site: SiteId) -> impl Iterator<Item = SiteId> + '_ {
        self.children[site.index()].iter().map(|&c| SiteId(c))
    }

    /// Roots of the forest.
    pub fn roots(&self) -> Vec<SiteId> {
        (0..self.parent.len() as u32)
            .map(SiteId)
            .filter(|s| self.parent[s.index()].is_none())
            .collect()
    }

    /// Depth of `site` (roots have depth 0).
    pub fn depth(&self, site: SiteId) -> usize {
        let mut d = 0;
        let mut cur = site.index();
        while let Some(p) = self.parent[cur] {
            d += 1;
            cur = p as usize;
        }
        d
    }

    /// True iff `a` is a strict ancestor of `b`.
    pub fn is_ancestor(&self, a: SiteId, b: SiteId) -> bool {
        let mut cur = b.index();
        while let Some(p) = self.parent[cur] {
            if p == a.0 {
                return true;
            }
            cur = p as usize;
        }
        false
    }

    /// The root-path of `site`, from the root down to `site`'s parent
    /// (exclusive of `site` itself).
    pub fn root_path(&self, site: SiteId) -> Vec<SiteId> {
        let mut path = Vec::new();
        let mut cur = site.index();
        while let Some(p) = self.parent[cur] {
            path.push(SiteId(p));
            cur = p as usize;
        }
        path.reverse();
        path
    }

    /// All sites in the subtree rooted at `site`, including `site`.
    pub fn subtree(&self, site: SiteId) -> Vec<SiteId> {
        let mut out = Vec::new();
        let mut stack = vec![site.0];
        while let Some(u) = stack.pop() {
            out.push(SiteId(u));
            stack.extend(self.children[u as usize].iter().copied());
        }
        out
    }

    /// The child of `from` whose subtree contains `target` — the next hop
    /// when routing a subtransaction down the tree. `None` if `target` is
    /// not a descendant of `from`.
    pub fn next_hop_toward(&self, from: SiteId, target: SiteId) -> Option<SiteId> {
        let mut cur = target;
        loop {
            let p = self.parent(cur)?;
            if p == from {
                return Some(cur);
            }
            cur = p;
        }
    }

    /// The children of `from` that must receive a subtransaction destined
    /// for `destinations` — exactly the *relevant children* of §2 ("a child
    /// is relevant for a subtransaction if either the child or one of its
    /// descendants contains a replica of an item that the subtransaction
    /// has updated").
    pub fn relevant_children(&self, from: SiteId, destinations: &[SiteId]) -> Vec<SiteId> {
        let mut out: Vec<SiteId> =
            destinations.iter().filter_map(|&d| self.next_hop_toward(from, d)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Verify the ancestor property for a constraint list; returns the
    /// first violated constraint if any. Used by tests and debug builds.
    pub fn verify(&self, constraints: &[(SiteId, SiteId)]) -> Result<(), (SiteId, SiteId)> {
        for &(u, v) in constraints {
            if !self.is_ancestor(u, v) {
                return Err((u, v));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::DataPlacement;
    use proptest::prelude::*;

    fn s(n: u32) -> SiteId {
        SiteId(n)
    }

    fn example_1_1_graph() -> CopyGraph {
        let mut p = DataPlacement::new(3);
        p.add_item(s(0), &[s(1), s(2)]);
        p.add_item(s(1), &[s(2)]);
        CopyGraph::from_placement(&p)
    }

    #[test]
    fn chain_of_example_1_1() {
        let g = example_1_1_graph();
        let t = PropagationTree::chain(&g).unwrap();
        // §2: s3 is a child of s2 which is a child of s1.
        assert_eq!(t.parent(s(1)), Some(s(0)));
        assert_eq!(t.parent(s(2)), Some(s(1)));
        assert_eq!(t.roots(), vec![s(0)]);
        assert!(t.is_ancestor(s(0), s(2)));
    }

    #[test]
    fn chain_fails_on_cycle() {
        let mut g = CopyGraph::empty(2);
        g.add_edge(s(0), s(1), 1);
        g.add_edge(s(1), s(0), 1);
        assert_eq!(PropagationTree::chain(&g).unwrap_err(), NotADag);
        assert!(PropagationTree::general(&g).is_err());
    }

    #[test]
    fn general_tree_branches_on_independent_subdags() {
        // s0 -> s1, s0 -> s2: s1 and s2 can be siblings.
        let mut g = CopyGraph::empty(3);
        g.add_edge(s(0), s(1), 1);
        g.add_edge(s(0), s(2), 1);
        let t = PropagationTree::general(&g).unwrap();
        assert_eq!(t.parent(s(1)), Some(s(0)));
        assert_eq!(t.parent(s(2)), Some(s(0)));
        assert_eq!(t.depth(s(2)), 1);
        // The chain would have made s2 a grandchild instead.
        let c = PropagationTree::chain(&g).unwrap();
        assert_eq!(c.depth(s(2)), 2);
    }

    #[test]
    fn general_tree_merges_incomparable_anchors() {
        // Diamond: s0 -> s1, s0 -> s2, s1 -> s3, s2 -> s3.
        // s3 needs BOTH s1 and s2 as ancestors, so one branch is spliced.
        let mut g = CopyGraph::empty(4);
        g.add_edge(s(0), s(1), 1);
        g.add_edge(s(0), s(2), 1);
        g.add_edge(s(1), s(3), 1);
        g.add_edge(s(2), s(3), 1);
        let t = PropagationTree::general(&g).unwrap();
        let constraints: Vec<_> = g.edges().into_iter().map(|(u, v, _)| (u, v)).collect();
        t.verify(&constraints).unwrap();
        assert!(t.is_ancestor(s(1), s(3)));
        assert!(t.is_ancestor(s(2), s(3)));
    }

    #[test]
    fn forest_for_disconnected_regions() {
        let mut g = CopyGraph::empty(4);
        g.add_edge(s(0), s(1), 1);
        g.add_edge(s(2), s(3), 1);
        let t = PropagationTree::general(&g).unwrap();
        assert_eq!(t.roots(), vec![s(0), s(2)]);
        assert!(!t.is_ancestor(s(0), s(3)));
    }

    #[test]
    fn routing_helpers() {
        let g = example_1_1_graph();
        let t = PropagationTree::chain(&g).unwrap();
        assert_eq!(t.next_hop_toward(s(0), s(2)), Some(s(1)));
        assert_eq!(t.next_hop_toward(s(0), s(1)), Some(s(1)));
        assert_eq!(t.next_hop_toward(s(2), s(0)), None);
        assert_eq!(t.relevant_children(s(0), &[s(2)]), vec![s(1)]);
        assert_eq!(t.relevant_children(s(2), &[]), Vec::<SiteId>::new());
        let sub = t.subtree(s(1));
        assert!(sub.contains(&s(1)) && sub.contains(&s(2)) && !sub.contains(&s(0)));
    }

    #[test]
    fn root_path_ordering() {
        let g = example_1_1_graph();
        let t = PropagationTree::chain(&g).unwrap();
        assert_eq!(t.root_path(s(2)), vec![s(0), s(1)]);
        assert_eq!(t.root_path(s(0)), Vec::<SiteId>::new());
    }

    /// Generate a random DAG by orienting random edges low → high.
    fn random_dag(n: u32, edges: &[(u32, u32)]) -> CopyGraph {
        let mut g = CopyGraph::empty(n);
        for &(a, b) in edges {
            let (a, b) = (a % n, b % n);
            if a != b {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                g.add_edge(SiteId(lo), SiteId(hi), 1);
            }
        }
        g
    }

    proptest! {
        /// Both tree constructions must satisfy the ancestor property for
        /// every edge of every random DAG.
        #[test]
        fn trees_satisfy_ancestor_property(
            n in 2u32..12,
            edges in prop::collection::vec((0u32..12, 0u32..12), 0..40),
        ) {
            let g = random_dag(n, &edges);
            let constraints: Vec<_> =
                g.edges().into_iter().map(|(u, v, _)| (u, v)).collect();
            let chain = PropagationTree::chain(&g).unwrap();
            prop_assert!(chain.verify(&constraints).is_ok());
            let tree = PropagationTree::general(&g).unwrap();
            prop_assert!(tree.verify(&constraints).is_ok());
        }

        /// The general tree is never deeper than the chain.
        #[test]
        fn general_no_deeper_than_chain(
            n in 2u32..12,
            edges in prop::collection::vec((0u32..12, 0u32..12), 0..40),
        ) {
            let g = random_dag(n, &edges);
            let chain = PropagationTree::chain(&g).unwrap();
            let tree = PropagationTree::general(&g).unwrap();
            let max_chain = (0..n).map(|i| chain.depth(SiteId(i))).max().unwrap();
            let max_tree = (0..n).map(|i| tree.depth(SiteId(i))).max().unwrap();
            prop_assert!(max_tree <= max_chain);
        }

        /// Every site is reachable from some root, and parent/child links
        /// are mutually consistent.
        #[test]
        fn tree_structure_is_consistent(
            n in 2u32..12,
            edges in prop::collection::vec((0u32..12, 0u32..12), 0..40),
        ) {
            let g = random_dag(n, &edges);
            let tree = PropagationTree::general(&g).unwrap();
            let mut seen = vec![false; n as usize];
            for r in tree.roots() {
                for site in tree.subtree(r) {
                    prop_assert!(!seen[site.index()], "site visited twice");
                    seen[site.index()] = true;
                }
            }
            prop_assert!(seen.iter().all(|&b| b), "orphaned site");
            for i in 0..n {
                for c in tree.children(SiteId(i)) {
                    prop_assert_eq!(tree.parent(c), Some(SiteId(i)));
                }
            }
        }
    }
}
