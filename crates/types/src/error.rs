//! Error types shared across the workspace.

use std::fmt;

use crate::{ItemId, TxnId};

/// Errors raised by the per-site storage engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StorageError {
    /// The item does not exist at this site (neither primary nor replica).
    NoSuchItem(ItemId),
    /// The transaction id is unknown (already committed/aborted or never
    /// began).
    NoSuchTxn(TxnId),
    /// The requested lock cannot be granted immediately; the transaction
    /// has been enqueued and will be resumed via a grant notification.
    WouldBlock(ItemId),
    /// The lock manager chose this transaction as a deadlock victim.
    Deadlock(TxnId),
    /// An operation was attempted on a transaction that is not active
    /// (e.g. writing after commit was initiated).
    InvalidState(TxnId),
    /// The snapshot handle is unknown or already closed (MVCC read-only
    /// transactions).
    NoSuchSnapshot(u64),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSuchItem(i) => write!(f, "no copy of item {i} at this site"),
            StorageError::NoSuchTxn(t) => write!(f, "unknown transaction {t:?}"),
            StorageError::WouldBlock(i) => write!(f, "lock on {i} not available; enqueued"),
            StorageError::Deadlock(t) => write!(f, "transaction {t:?} chosen as deadlock victim"),
            StorageError::InvalidState(t) => write!(f, "transaction {t:?} is not active"),
            StorageError::NoSuchSnapshot(s) => write!(f, "unknown or closed snapshot {s}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Transaction-level outcomes surfaced by the protocol engines.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TxnError {
    /// Aborted because a lock wait exceeded the deadlock timeout (the
    /// paper's mechanism for both local and global deadlocks, §5).
    DeadlockTimeout,
    /// Aborted by local waits-for-graph deadlock detection.
    DeadlockCycle,
    /// Aborted because a distributed commit (2PC) participant voted no.
    CommitVetoed,
    /// Underlying storage failure.
    Storage(StorageError),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::DeadlockTimeout => write!(f, "aborted: deadlock timeout expired"),
            TxnError::DeadlockCycle => write!(f, "aborted: waits-for cycle detected"),
            TxnError::CommitVetoed => write!(f, "aborted: distributed commit vetoed"),
            TxnError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl From<StorageError> for TxnError {
    fn from(e: StorageError) -> Self {
        TxnError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StorageError::NoSuchItem(ItemId(3));
        assert!(e.to_string().contains("x3"));
        let t: TxnError = e.into();
        assert!(matches!(t, TxnError::Storage(_)));
        assert!(TxnError::DeadlockTimeout.to_string().contains("timeout"));
    }
}
