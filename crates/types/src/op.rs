//! Transaction operations.

use serde::{Deserialize, Serialize};

use crate::{ItemId, Value};

/// The kind of an operation: read or write.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum OpKind {
    /// Shared-mode access returning the item's current value.
    Read,
    /// Exclusive-mode access installing a new value.
    Write,
}

impl OpKind {
    /// True for `Write`.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, OpKind::Write)
    }
}

/// One operation in a transaction program.
///
/// Per the §1.1 system model, a transaction may *read* any item present at
/// its originating site (primary copy or replica) but may only *write*
/// items whose primary copy lives at that site.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Op {
    /// The logical item accessed.
    pub item: ItemId,
    /// Read or write.
    pub kind: OpKind,
    /// Value installed by a write; ignored for reads.
    pub value: Value,
}

impl Op {
    /// Build a read operation.
    pub fn read(item: ItemId) -> Self {
        Op { item, kind: OpKind::Read, value: Value::Initial }
    }

    /// Build a write operation installing `value`.
    pub fn write(item: ItemId, value: impl Into<Value>) -> Self {
        Op { item, kind: OpKind::Write, value: value.into() }
    }

    /// True if this is a write.
    #[inline]
    pub fn is_write(&self) -> bool {
        self.kind.is_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = Op::read(ItemId(3));
        assert_eq!(r.kind, OpKind::Read);
        assert!(!r.is_write());

        let w = Op::write(ItemId(4), 99);
        assert!(w.is_write());
        assert_eq!(w.value.as_int(), Some(99));
    }
}
