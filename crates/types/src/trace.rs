//! Happens-before trace collection for the race detector.
//!
//! The threaded runtime (`repl-runtime`) and the storage engine
//! (`repl-storage`) record synchronization and data-access events here when
//! tracing is enabled; `repl-analysis` replays the recorded trace through a
//! vector-clock happens-before analysis and reports conflicting store-slot
//! accesses that no synchronization edge orders — an independent,
//! ThreadSanitizer-style check on the DAG(WT) threaded deployment.
//!
//! The collector is process-global and **off by default**: every
//! instrumentation site is gated on one relaxed atomic load, so production
//! runs pay a branch and nothing else. Traced runs must be serialized by
//! the caller (the collector holds one global event log); the race-detector
//! tests take a lock around enable/`take`.
//!
//! Three kinds of events are recorded:
//!
//! * **Lock events** from the strict-2PL lock manager: a release of an
//!   item's lock happens-before every later acquire of the same item in
//!   the same lock *scope* (one scope per store instance);
//! * **Channel events** from the runtime's site channels: a send
//!   happens-before the receive of the same `(channel, seq)` message;
//! * **Access events**: transactional reads/writes of a store slot, plus
//!   non-transactional `peek`s (which take no lock — exactly the kind of
//!   access the detector exists to catch when it races a writer).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

use serde::Serialize;

use crate::id::{ItemId, TxnId};

/// One recorded synchronization or data-access event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum TraceEvent {
    /// A lock on `(scope, item)` was granted to `txn`.
    LockAcquire {
        /// Lock scope (one per store instance).
        scope: u64,
        /// The locked item.
        item: ItemId,
        /// The transaction now holding the lock.
        txn: TxnId,
        /// True for exclusive (X) grants, false for shared (S).
        exclusive: bool,
    },
    /// `txn` released its lock on `(scope, item)`.
    LockRelease {
        /// Lock scope (one per store instance).
        scope: u64,
        /// The unlocked item.
        item: ItemId,
        /// The transaction that held the lock.
        txn: TxnId,
    },
    /// Message `seq` was sent on `channel`.
    ChanSend {
        /// Channel identity (one per traced channel).
        channel: u64,
        /// Per-channel message sequence number.
        seq: u64,
    },
    /// Message `seq` was received from `channel`.
    ChanRecv {
        /// Channel identity (one per traced channel).
        channel: u64,
        /// Per-channel message sequence number.
        seq: u64,
    },
    /// A store slot `(scope, item)` was read or written.
    Access {
        /// Store identity (shared with the store's lock scope).
        scope: u64,
        /// The accessed item.
        item: ItemId,
        /// The accessing transaction (`TxnId(u64::MAX)` for
        /// non-transactional accesses such as `peek`).
        txn: TxnId,
        /// True for writes, false for reads.
        write: bool,
    },
}

/// The sentinel transaction id recorded for non-transactional accesses.
pub const NO_TXN: TxnId = TxnId(u64::MAX);

/// A [`TraceEvent`] stamped with the dense index of the recording thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct TimedEvent {
    /// Dense index of the OS thread that recorded the event.
    pub thread: u32,
    /// The event itself.
    pub event: TraceEvent,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<TimedEvent>> = Mutex::new(Vec::new());
static NEXT_SCOPE: AtomicU64 = AtomicU64::new(1);
static NEXT_CHANNEL: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static THREAD_IDX: Cell<Option<u32>> = const { Cell::new(None) };
}

/// Dense index of the calling thread, assigned on first use.
pub fn thread_index() -> u32 {
    THREAD_IDX.with(|idx| match idx.get() {
        Some(i) => i,
        None => {
            let i = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            idx.set(Some(i));
            i
        }
    })
}

/// Allocate a fresh lock/store scope identity.
pub fn next_scope_id() -> u64 {
    NEXT_SCOPE.fetch_add(1, Ordering::Relaxed)
}

/// Allocate a fresh channel identity.
pub fn next_channel_id() -> u64 {
    NEXT_CHANNEL.fetch_add(1, Ordering::Relaxed)
}

/// Turn event recording on. Existing buffered events are kept; call
/// [`take`] first for a clean trace.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn event recording off.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// True when recording is on. Instrumentation sites check this before
/// paying for an event.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record `event` for the calling thread, if tracing is enabled.
#[inline]
pub fn record(event: TraceEvent) {
    if !is_enabled() {
        return;
    }
    let stamped = TimedEvent { thread: thread_index(), event };
    lock_events().push(stamped);
}

/// Drain and return everything recorded so far.
pub fn take() -> Vec<TimedEvent> {
    std::mem::take(&mut *lock_events())
}

fn lock_events() -> std::sync::MutexGuard<'static, Vec<TimedEvent>> {
    EVENTS.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        disable();
        let _ = take();
        record(TraceEvent::ChanSend { channel: 1, seq: 1 });
        assert!(take().is_empty());
    }

    #[test]
    fn ids_are_distinct() {
        let a = next_scope_id();
        let b = next_scope_id();
        assert_ne!(a, b);
        let c = next_channel_id();
        let d = next_channel_id();
        assert_ne!(c, d);
    }

    #[test]
    fn thread_index_is_stable_within_a_thread() {
        assert_eq!(thread_index(), thread_index());
        let here = thread_index();
        let there = std::thread::spawn(thread_index).join().unwrap();
        assert_ne!(here, there);
    }
}
