//! Shared vocabulary types for the replicated-database protocol suite.
//!
//! This crate defines the identifiers, values, operations and error types
//! used by every other crate in the workspace: the storage engine
//! (`repl-storage`), the copy-graph toolkit (`repl-copygraph`), the
//! simulation kernel (`repl-sim`) and the protocol engines (`repl-core`).
//!
//! The model follows Section 1.1 of Breitbart et al., SIGMOD 1999: a fixed
//! set of *sites*, each holding primary copies of some *items* and replicas
//! of others; *transactions* originate at a single site and are sequences
//! of read and write operations.

#![warn(missing_docs)]

pub mod error;
pub mod id;
pub mod netaddr;
pub mod op;
pub mod trace;
pub mod value;

pub use error::{StorageError, TxnError};
pub use id::{GlobalTxnId, ItemId, SiteId, ThreadId, TxnId};
pub use netaddr::AddressMap;
pub use op::{Op, OpKind};
pub use value::Value;
