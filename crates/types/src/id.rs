//! Newtype identifiers for sites, items, threads and transactions.
//!
//! All identifiers are small dense integers so they can be used directly as
//! vector indices in the simulation engine; the newtype wrappers keep them
//! from being confused with one another.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a site (a node in the distributed system).
///
/// Sites are totally ordered (`s1 < s2 < … < sm`); the DAG(T) timestamp
/// order of Definition 3.3 and the chain-tree construction both rely on
/// this order, which is simply the order of the underlying integers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl SiteId {
    /// The index of this site, for use with vectors indexed by site.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a logical data item.
///
/// A logical item has exactly one *primary copy* (at its primary site) and
/// zero or more *secondary copies* (replicas) at other sites.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The index of this item, for use with vectors indexed by item.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Identifier of a worker thread within one site (the multiprogramming
/// level of §5.2 is the number of these per site).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(pub u32);

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Site-local transaction identifier handed out by a storage engine.
///
/// Each site's storage engine numbers the (sub)transactions it executes;
/// the pair `(SiteId, TxnId)` is globally unique but the storage crate is
/// deliberately unaware of sites.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Globally unique identifier of a *logical* transaction.
///
/// A logical transaction consists of one primary subtransaction plus all the
/// secondary subtransactions that carry its updates to other sites. Every
/// installed version is tagged with the `GlobalTxnId` of its logical writer,
/// which is what the serializability checker keys on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalTxnId {
    /// Site at which the primary subtransaction originated.
    pub origin: SiteId,
    /// Origin-site-local sequence number.
    pub seq: u64,
}

impl GlobalTxnId {
    /// Construct a global transaction id.
    #[inline]
    pub fn new(origin: SiteId, seq: u64) -> Self {
        Self { origin, seq }
    }
}

impl fmt::Debug for GlobalTxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}@{}", self.seq, self.origin)
    }
}

impl fmt::Display for GlobalTxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}@{}", self.seq, self.origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_ordering_follows_integers() {
        assert!(SiteId(0) < SiteId(1));
        assert!(SiteId(7) > SiteId(3));
        assert_eq!(SiteId(4).index(), 4);
    }

    #[test]
    fn global_txn_id_display() {
        let id = GlobalTxnId::new(SiteId(2), 17);
        assert_eq!(format!("{id}"), "T17@s2");
        assert_eq!(format!("{id:?}"), "T17@s2");
    }

    #[test]
    fn global_txn_ids_are_distinct_across_sites() {
        let a = GlobalTxnId::new(SiteId(0), 1);
        let b = GlobalTxnId::new(SiteId(1), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn item_and_thread_debug_formats() {
        assert_eq!(format!("{:?}", ItemId(9)), "x9");
        assert_eq!(format!("{:?}", ThreadId(2)), "t2");
        assert_eq!(format!("{:?}", TxnId(5)), "T5");
    }
}
