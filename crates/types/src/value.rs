//! Item values.
//!
//! The protocols are agnostic to what is stored in an item; the evaluation
//! workloads only ever write integers. `Value` is a small enum so the
//! storage engine stays generic without introducing a type parameter that
//! would ripple through every crate.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The value of one item copy.
#[derive(Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// Initial value of every item before any transaction writes it.
    #[default]
    Initial,
    /// A 64-bit integer payload (what the benchmark workloads write).
    Int(i64),
    /// An opaque byte payload, for applications storing structured data.
    Bytes(Vec<u8>),
}

impl Value {
    /// Convenience constructor for integer payloads.
    #[inline]
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Returns the integer payload if this value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Approximate in-memory size in bytes, used by the simulation's
    /// message-cost model.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Initial => 0,
            Value::Int(_) => 8,
            Value::Bytes(b) => b.len(),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Initial => write!(f, "⊥"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_initial() {
        assert_eq!(Value::default(), Value::Initial);
    }

    #[test]
    fn int_roundtrip() {
        assert_eq!(Value::int(42).as_int(), Some(42));
        assert_eq!(Value::Initial.as_int(), None);
        assert_eq!(Value::from(7), Value::Int(7));
    }

    #[test]
    fn sizes() {
        assert_eq!(Value::Initial.size_bytes(), 0);
        assert_eq!(Value::int(1).size_bytes(), 8);
        assert_eq!(Value::Bytes(vec![0; 100]).size_bytes(), 100);
    }
}
