//! Cluster address maps.
//!
//! A deployed cluster (one OS process per site, `repld`) is described by
//! a map from site id to a `host:port` string. The map is a plain sorted
//! vector rather than a hash map so iteration order is deterministic and
//! duplicate entries remain *representable* — the `repl-analysis` RA011
//! lint wants to see malformed maps (duplicate site ids, duplicate
//! addresses, missing peers) as data, not have them silently collapsed
//! by insertion.
//!
//! Addresses are kept as strings: this crate (and everything below
//! `repl-runtime`) stays free of `std::net` so the deterministic layers
//! cannot accidentally grow a socket dependency (replint RL006).

/// A site-id → address table for one cluster.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AddressMap {
    entries: Vec<(SiteId, String)>,
}

use crate::SiteId;

impl AddressMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an entry. Keeps the map sorted by site id; duplicates are
    /// retained (the linter flags them, [`AddressMap::get`] returns the
    /// first).
    pub fn insert(&mut self, site: SiteId, addr: impl Into<String>) {
        let addr = addr.into();
        let pos = self.entries.partition_point(|(s, _)| *s <= site);
        self.entries.insert(pos, (site, addr));
    }

    /// The first address recorded for `site`.
    pub fn get(&self, site: SiteId) -> Option<&str> {
        self.entries.iter().find(|(s, _)| *s == site).map(|(_, a)| a.as_str())
    }

    /// All entries in ascending site order (duplicates included).
    pub fn entries(&self) -> &[(SiteId, String)] {
        &self.entries
    }

    /// Number of entries (duplicates included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(site, addr)` pairs in ascending site order.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, &str)> {
        self.entries.iter().map(|(s, a)| (*s, a.as_str()))
    }
}

impl FromIterator<(SiteId, String)> for AddressMap {
    fn from_iter<I: IntoIterator<Item = (SiteId, String)>>(iter: I) -> Self {
        let mut map = AddressMap::new();
        for (s, a) in iter {
            map.insert(s, a);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_site_order_and_duplicates() {
        let mut m = AddressMap::new();
        m.insert(SiteId(2), "c:3");
        m.insert(SiteId(0), "a:1");
        m.insert(SiteId(1), "b:2");
        m.insert(SiteId(1), "b2:4");
        let sites: Vec<u32> = m.iter().map(|(s, _)| s.0).collect();
        assert_eq!(sites, vec![0, 1, 1, 2]);
        assert_eq!(m.get(SiteId(1)), Some("b:2"));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn get_missing_is_none() {
        let m = AddressMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(SiteId(0)), None);
    }
}
