//! Property tests for the simulation kernel: the calendar is a stable
//! priority queue, the network is per-link FIFO, the CPU conserves work.

use proptest::prelude::*;

use repl_sim::{CpuQueue, EventQueue, Network, SimDuration, SimTime};
use repl_types::SiteId;

proptest! {
    /// Events pop in timestamp order; equal timestamps pop in push order
    /// (stability — what makes runs deterministic).
    #[test]
    fn calendar_is_a_stable_priority_queue(times in prop::collection::vec(0u64..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push_at(SimTime(t), i);
        }
        let mut popped = Vec::new();
        while let Some((at, idx)) = q.pop() {
            popped.push((at, idx));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    /// The clock never runs backwards, even with interleaved push/pop.
    #[test]
    fn clock_is_monotone(ops in prop::collection::vec((0u64..100, prop::bool::ANY), 1..200)) {
        let mut q = EventQueue::new();
        let mut last = SimTime::ZERO;
        for (delay, do_pop) in ops {
            q.push_at(q.now() + SimDuration::micros(delay), ());
            if do_pop {
                if let Some((at, ())) = q.pop() {
                    prop_assert!(at >= last);
                    last = at;
                }
            }
        }
        while let Some((at, ())) = q.pop() {
            prop_assert!(at >= last);
            last = at;
        }
    }

    /// Per-link FIFO: deliveries on one (from, to) link never reorder,
    /// whatever per-message latencies are used.
    #[test]
    fn network_links_are_fifo(
        msgs in prop::collection::vec((0u64..4, 0u64..4, 0u64..500, 0u64..300), 1..100)
    ) {
        let mut net = Network::new(4, SimDuration::micros(100));
        let mut now = SimTime::ZERO;
        let mut last_per_link: std::collections::HashMap<(u64, u64), SimTime> =
            std::collections::HashMap::new();
        for (from, to, gap, latency) in msgs {
            if from == to {
                continue;
            }
            now += SimDuration::micros(gap);
            let at = net.send_with_latency(
                now,
                SiteId(from as u32),
                SiteId(to as u32),
                SimDuration::micros(latency),
            );
            prop_assert!(at >= now, "delivery before send");
            if let Some(&prev) = last_per_link.get(&(from, to)) {
                prop_assert!(at >= prev, "link ({from},{to}) reordered");
            }
            last_per_link.insert((from, to), at);
        }
    }

    /// The CPU queue conserves work: total busy time equals the sum of
    /// service demands, and completions never overlap.
    #[test]
    fn cpu_conserves_work(jobs in prop::collection::vec((0u64..200, 1u64..100), 1..100)) {
        let mut cpu = CpuQueue::new();
        let mut now = SimTime::ZERO;
        let mut total = 0u64;
        let mut last_done = SimTime::ZERO;
        for (gap, service) in jobs {
            now += SimDuration::micros(gap);
            let done = cpu.run(now, SimDuration::micros(service));
            total += service;
            // Service starts no earlier than both arrival and the
            // previous completion.
            prop_assert!(done.as_micros() >= now.as_micros() + service);
            prop_assert!(done.as_micros() >= last_done.as_micros() + service);
            last_done = done;
        }
        prop_assert_eq!(cpu.busy_time().as_micros(), total);
        prop_assert_eq!(cpu.horizon(), last_done);
    }
}
