//! Virtual time: microsecond-resolution instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A duration of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub const fn micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from seconds.
    pub const fn secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Scale by an integer factor.
    pub const fn times(self, k: u64) -> Self {
        SimDuration(self.0 * k)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

/// An instant of virtual time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference between two instants.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:?}", SimDuration(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::millis(2);
        assert_eq!(t.as_micros(), 2_000);
        let t2 = t + SimDuration::micros(500);
        assert_eq!(t2 - t, SimDuration::micros(500));
        assert_eq!(t - t2, SimDuration::ZERO, "saturating");
        assert_eq!(SimDuration::secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn conversions_and_format() {
        assert_eq!(SimDuration::millis(1).as_millis_f64(), 1.0);
        assert_eq!(format!("{:?}", SimDuration::micros(10)), "10us");
        assert_eq!(format!("{:?}", SimDuration::millis(50)), "50.000ms");
        assert_eq!(format!("{:?}", SimDuration::secs(2)), "2.000s");
        assert_eq!(SimDuration::micros(150).times(4), SimDuration::micros(600));
    }

    #[test]
    fn max_and_ordering() {
        let a = SimTime(5);
        let b = SimTime(9);
        assert_eq!(a.max(b), b);
        assert!(a < b);
    }
}
