//! Deterministic discrete-event simulation kernel.
//!
//! The paper's evaluation ran on three physical UltraSparc machines over a
//! 10 Mbit ethernet. This crate is the workspace's substitute testbed: a
//! virtual-time kernel in which every run is a pure function of its inputs
//! (parameters + seed), so experiments are exactly reproducible.
//!
//! Three pieces:
//!
//! * [`time::SimTime`] / [`time::SimDuration`] — microsecond-resolution
//!   virtual time;
//! * [`queue::EventQueue`] — the central calendar. Events at equal
//!   timestamps pop in insertion order (a strictly monotone sequence
//!   number breaks ties), which is what makes the simulation
//!   deterministic;
//! * [`net::Network`] — reliable FIFO point-to-point links with
//!   configurable latency (the §1.1 model assumes reliable FIFO message
//!   delivery between any two sites);
//! * [`fault::FaultPlan`] — seeded, declarative fault injection: site
//!   crash/restart windows, transient link outages, and delay jitter.
//!   Faults stall messages but never reorder a link, so §1.1's FIFO
//!   invariant degrades gracefully;
//! * [`cpu::CpuQueue`] — a single-server FIFO queue per site, modelling
//!   the shared processor: protocol work (applying secondary
//!   subtransactions, serving remote reads) competes with primary
//!   transactions for the same CPU, exactly the contention that shapes
//!   the paper's throughput curves.

#![warn(missing_docs)]

pub mod cpu;
pub mod fault;
pub mod net;
pub mod queue;
pub mod time;

pub use cpu::CpuQueue;
pub use fault::{CrashWindow, FaultPlan, LinkOutage};
pub use net::Network;
pub use queue::EventQueue;
pub use time::{SimDuration, SimTime};
