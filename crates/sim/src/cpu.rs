//! Per-site CPU modelled as a single-server FIFO queue.
//!
//! Every piece of work a site performs — executing an operation of a local
//! transaction, applying a secondary subtransaction's write, serving a
//! remote read, handling a message — requests a service slice. Slices are
//! served in request order on a single server, so protocol overhead
//! *displaces* primary-transaction work exactly as it did on the paper's
//! time-shared UltraSparc machines. This is the mechanism behind the
//! paper's crossovers: e.g. in Fig. 3(a) at write-heavy workloads PSL wins
//! because BackEdge's secondary subtransactions consume replica-site CPU.

use crate::time::{SimDuration, SimTime};

/// A single-server FIFO work queue.
///
/// The queue is represented by its busy horizon: a request arriving at
/// `now` begins service at `max(now, horizon)` and completes one service
/// time later.
#[derive(Clone, Debug, Default)]
pub struct CpuQueue {
    horizon: SimTime,
    busy: SimDuration,
    served: u64,
}

impl CpuQueue {
    /// An idle CPU.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue `service` worth of work arriving at `now`; returns the
    /// completion time.
    pub fn run(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let start = now.max(self.horizon);
        self.horizon = start + service;
        self.busy = self.busy + service;
        self.served += 1;
        self.horizon
    }

    /// The time at which all currently queued work completes.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Discard all queued-but-unserved work as of `now` (a site crash
    /// wipes the CPU's run queue): the next request starts no earlier
    /// than `now`, not at the stale pre-crash horizon.
    pub fn reset(&mut self, now: SimTime) {
        self.horizon = now;
    }

    /// Total busy time accumulated (for utilization reporting).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Utilization in `[0, 1]` over the interval `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.as_micros() == 0 {
            0.0
        } else {
            (self.busy.as_micros() as f64 / now.as_micros() as f64).min(1.0)
        }
    }

    /// Number of service slices executed.
    pub fn slices_served(&self) -> u64 {
        self.served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_cpu_serves_immediately() {
        let mut cpu = CpuQueue::new();
        let done = cpu.run(SimTime(100), SimDuration::micros(50));
        assert_eq!(done, SimTime(150));
        assert_eq!(cpu.slices_served(), 1);
    }

    #[test]
    fn contention_queues_fifo() {
        let mut cpu = CpuQueue::new();
        let a = cpu.run(SimTime(0), SimDuration::micros(100));
        let b = cpu.run(SimTime(10), SimDuration::micros(100));
        let c = cpu.run(SimTime(20), SimDuration::micros(100));
        assert_eq!(a, SimTime(100));
        assert_eq!(b, SimTime(200), "second request waits for the first");
        assert_eq!(c, SimTime(300));
    }

    #[test]
    fn gaps_leave_the_cpu_idle() {
        let mut cpu = CpuQueue::new();
        cpu.run(SimTime(0), SimDuration::micros(10));
        let done = cpu.run(SimTime(1_000), SimDuration::micros(10));
        assert_eq!(done, SimTime(1_010));
        assert_eq!(cpu.busy_time(), SimDuration::micros(20));
        let u = cpu.utilization(SimTime(1_010));
        assert!((u - 20.0 / 1_010.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_at_time_zero_is_zero() {
        let cpu = CpuQueue::new();
        assert_eq!(cpu.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn reset_clears_the_backlog() {
        let mut cpu = CpuQueue::new();
        cpu.run(SimTime(0), SimDuration::micros(10_000));
        cpu.reset(SimTime(100));
        let done = cpu.run(SimTime(100), SimDuration::micros(10));
        assert_eq!(done, SimTime(110), "post-reset work must not wait for pre-reset work");
    }
}
