//! The event calendar.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

#[derive(PartialEq, Eq)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E: Eq> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
///
/// Events scheduled for the same instant pop in the order they were
/// pushed; popping advances the virtual clock. Scheduling into the past is
/// a logic error and panics in debug builds (it is clamped to `now` in
/// release builds so long experiments degrade gracefully rather than
/// travelling backwards in time).
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push_at(SimTime(30), "c");
        q.push_at(SimTime(10), "a");
        q.push_at(SimTime(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.now(), SimTime(10));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), SimTime(30), "clock holds after drain");
    }

    #[test]
    fn equal_times_pop_in_push_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push_at(SimTime(5), i);
        }
        let popped: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push_at(SimTime(10), 1);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        // Schedule relative to the advanced clock.
        q.push_at(q.now() + SimDuration::micros(5), 2);
        q.push_at(q.now() + SimDuration::micros(1), 3);
        assert_eq!(q.pop(), Some((SimTime(11), 3)));
        assert_eq!(q.pop(), Some((SimTime(15), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_pending() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push_at(SimTime(1), ());
        q.push_at(SimTime(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
