//! Reliable FIFO point-to-point links.
//!
//! §1.1: "the underlying network delivers messages reliably and in FIFO
//! order between any two sites". The network computes delivery times; the
//! caller schedules the corresponding delivery events on its
//! [`crate::EventQueue`]. FIFO is enforced per ordered site pair: a
//! message never overtakes an earlier one on the same link, even if the
//! caller uses varying latencies.

use repl_types::SiteId;

use crate::fault::FaultPlan;
use crate::time::{SimDuration, SimTime};

/// Per-link FIFO bookkeeping plus latency configuration.
#[derive(Clone, Debug)]
pub struct Network {
    num_sites: u32,
    latency: SimDuration,
    /// Earliest permissible next delivery per (from, to) link.
    last_delivery: Vec<SimTime>,
    /// Messages sent, per (from, to) link — the message-overhead metric
    /// used by the DAG(WT)-vs-DAG(T) ablation.
    sent: Vec<u64>,
    /// Injected link faults (outages, jitter); the empty plan is free.
    faults: FaultPlan,
    /// Cumulative extra delay injected by the fault plan — the
    /// stall-time metric.
    stalled: SimDuration,
}

impl Network {
    /// A network over `num_sites` sites with uniform link `latency`.
    pub fn new(num_sites: u32, latency: SimDuration) -> Self {
        let n = num_sites as usize;
        Network {
            num_sites,
            latency,
            last_delivery: vec![SimTime::ZERO; n * n],
            sent: vec![0; n * n],
            faults: FaultPlan::none(),
            stalled: SimDuration::ZERO,
        }
    }

    /// Install a fault plan; link outages and jitter apply to every
    /// subsequent send.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The installed fault plan (the empty plan when none was set).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Total extra delay the fault plan injected across all messages.
    pub fn stall_time(&self) -> SimDuration {
        self.stalled
    }

    /// The configured one-way latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    #[inline]
    fn link(&self, from: SiteId, to: SiteId) -> usize {
        from.index() * self.num_sites as usize + to.index()
    }

    /// Record a send at `now` from `from` to `to` and return the delivery
    /// time, respecting per-link FIFO order.
    ///
    /// Messages a site sends to itself are delivered after the same
    /// latency (the paper ran several DataBlitz instances per machine and
    /// all inter-instance communication went through TCP sockets).
    pub fn send(&mut self, now: SimTime, from: SiteId, to: SiteId) -> SimTime {
        self.send_with_latency(now, from, to, self.latency)
    }

    /// Like [`Network::send`] but with an explicit latency for this
    /// message (used to model larger payloads).
    pub fn send_with_latency(
        &mut self,
        now: SimTime,
        from: SiteId,
        to: SiteId,
        latency: SimDuration,
    ) -> SimTime {
        let link = self.link(from, to);
        // Faults are strictly additive: outages defer the departure,
        // jitter stretches the flight time. The FIFO clamp below then
        // guarantees a faulted message stalls later traffic on its link
        // rather than being overtaken by it.
        let extra = self.faults.extra_delay(now, from, to, self.sent[link]);
        self.stalled = self.stalled + extra;
        let at = (now + latency + extra).max(self.last_delivery[link]);
        self.last_delivery[link] = at;
        self.sent[link] += 1;
        at
    }

    /// Total messages sent across all links.
    pub fn total_messages(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Messages sent on the `from → to` link.
    pub fn messages_on(&self, from: SiteId, to: SiteId) -> u64 {
        self.sent[self.link(from, to)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u32) -> SiteId {
        SiteId(n)
    }

    #[test]
    fn constant_latency_delivery() {
        let mut net = Network::new(3, SimDuration::micros(150));
        let at = net.send(SimTime(1_000), s(0), s(1));
        assert_eq!(at, SimTime(1_150));
        assert_eq!(net.total_messages(), 1);
        assert_eq!(net.messages_on(s(0), s(1)), 1);
        assert_eq!(net.messages_on(s(1), s(0)), 0);
    }

    #[test]
    fn fifo_prevents_overtaking() {
        let mut net = Network::new(2, SimDuration::micros(100));
        // A slow (large) message followed by a fast one on the same link:
        // the fast one must not arrive earlier.
        let first = net.send_with_latency(SimTime(0), s(0), s(1), SimDuration::micros(500));
        let second = net.send_with_latency(SimTime(10), s(0), s(1), SimDuration::micros(100));
        assert_eq!(first, SimTime(500));
        assert!(second >= first, "FIFO violated: {second:?} < {first:?}");
    }

    #[test]
    fn outage_stalls_but_never_reorders() {
        let mut net = Network::new(2, SimDuration::micros(100));
        net.set_faults(FaultPlan::none().outage(s(0), s(1), SimTime(0), SimTime(1_000)));
        // Sent during the outage: departs at outage end, lands at end+latency.
        let first = net.send(SimTime(500), s(0), s(1));
        assert_eq!(first, SimTime(1_100));
        // Sent right after the outage lifts: would land at 1_101 on a
        // healthy link, and does — FIFO holds without extra stalling.
        let second = net.send(SimTime(1_001), s(0), s(1));
        assert_eq!(second, SimTime(1_101));
        assert!(second >= first, "FIFO violated across an outage");
        assert_eq!(net.stall_time(), SimDuration::micros(500));
        // The reverse link never saw the outage.
        assert_eq!(net.send(SimTime(500), s(1), s(0)), SimTime(600));
    }

    #[test]
    fn jittered_links_preserve_fifo() {
        let mut base = Network::new(2, SimDuration::micros(100));
        let mut jit = Network::new(2, SimDuration::micros(100));
        jit.set_faults(FaultPlan::none().seeded(11).jitter(SimDuration::micros(300)));
        let mut prev = SimTime::ZERO;
        for k in 0..200u64 {
            let now = SimTime(k * 10);
            let plain = base.send(now, s(0), s(1));
            let at = jit.send(now, s(0), s(1));
            assert!(at >= plain, "jitter must only add delay");
            assert!(at >= prev, "jitter reordered the link at message {k}");
            prev = at;
        }
        // Re-running the same schedule reproduces it exactly.
        let mut again = Network::new(2, SimDuration::micros(100));
        again.set_faults(FaultPlan::none().seeded(11).jitter(SimDuration::micros(300)));
        for k in 0..200u64 {
            let now = SimTime(k * 10);
            let _ = again.send(now, s(0), s(1));
        }
        assert_eq!(again.stall_time(), jit.stall_time());
    }

    #[test]
    fn links_are_independent() {
        let mut net = Network::new(3, SimDuration::micros(100));
        net.send_with_latency(SimTime(0), s(0), s(1), SimDuration::micros(900));
        // Different destination: unaffected by the busy 0→1 link.
        let at = net.send(SimTime(0), s(0), s(2));
        assert_eq!(at, SimTime(100));
        // Reverse direction is its own link too.
        let at = net.send(SimTime(0), s(1), s(0));
        assert_eq!(at, SimTime(100));
    }
}
