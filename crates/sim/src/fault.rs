//! Deterministic fault plans: site crashes, link outages, delay jitter.
//!
//! The paper assumes reliable FIFO links (§1.1) and introduces epoch
//! numbers (§3.3) precisely so DAG(T) survives site failures. A
//! [`FaultPlan`] makes those failures injectable without giving up
//! reproducibility: every fault is a pure function of the plan's
//! declarative windows and its seed — no wall clock, no OS entropy.
//!
//! Two invariants the plan is designed around:
//!
//! * **Faults stall, they never reorder.** A link outage or jitter only
//!   *adds* delay; [`crate::Network`] then clamps the delivery time to be
//!   no earlier than the link's previous delivery, so per-link FIFO
//!   (§1.1) survives every fault schedule.
//! * **Crash windows are data, not events.** The plan lists when each
//!   site crashes and (optionally) restarts; the engine turns the list
//!   into `SiteCrash`/`SiteRestart` events at build time, so two runs of
//!   the same plan replay the same failure history.

use repl_types::SiteId;
use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// One site failure: the site crashes at `at` and, if `restart` is set,
/// rejoins (with WAL replay) at that later instant.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashWindow {
    /// The site that fails.
    pub site: SiteId,
    /// Crash instant (virtual time).
    pub at: SimTime,
    /// Restart instant; `None` means the site stays down forever.
    pub restart: Option<SimTime>,
}

/// One transient outage of the ordered link `from → to`: messages whose
/// send falls inside `[start, end)` depart only at `end`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkOutage {
    /// Sending side of the affected ordered link.
    pub from: SiteId,
    /// Receiving side of the affected ordered link.
    pub to: SiteId,
    /// Outage start (inclusive).
    pub start: SimTime,
    /// Outage end (exclusive): first instant messages flow again.
    pub end: SimTime,
}

/// A declarative, seeded fault schedule consulted by [`crate::Network`]
/// and the engine. The empty plan ([`FaultPlan::none`]) injects nothing
/// and costs nothing.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Site crash/restart windows, in schedule order.
    pub crashes: Vec<CrashWindow>,
    /// Transient link outages.
    pub outages: Vec<LinkOutage>,
    /// Maximum extra per-message latency; each message on a jittered
    /// link draws a deterministic delay in `[0, max_jitter]`.
    pub max_jitter: SimDuration,
    /// Seed for the jitter stream (and for generated plans).
    pub seed: u64,
}

/// SplitMix64 step — the same generator the engine uses for retry
/// jitter; pure state-in/state-out, reproducible everywhere.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty plan: no crashes, no outages, no jitter.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True if the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.outages.is_empty() && self.max_jitter == SimDuration::ZERO
    }

    /// Add a crash window (builder style).
    pub fn crash(mut self, site: SiteId, at: SimTime, restart: Option<SimTime>) -> Self {
        assert!(restart.is_none_or(|r| r > at), "restart must come strictly after the crash");
        self.crashes.push(CrashWindow { site, at, restart });
        self
    }

    /// Add a transient outage of the ordered link `from → to`.
    pub fn outage(mut self, from: SiteId, to: SiteId, start: SimTime, end: SimTime) -> Self {
        assert!(end > start, "outage must have positive length");
        self.outages.push(LinkOutage { from, to, start, end });
        self
    }

    /// Enable per-message delay jitter up to `max` on every link.
    pub fn jitter(mut self, max: SimDuration) -> Self {
        self.max_jitter = max;
        self
    }

    /// Set the seed the jitter stream derives from.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A generated plan: `count` crash/restart windows spread
    /// deterministically (from `seed`) over sites `0..num_sites` within
    /// `[horizon/8, horizon]`, each down for `downtime`. Used by the
    /// fault sweep to turn a scalar "crash intensity" axis into a
    /// concrete schedule.
    pub fn random_crashes(
        seed: u64,
        num_sites: u32,
        horizon: SimTime,
        count: u32,
        downtime: SimDuration,
    ) -> Self {
        let mut plan = FaultPlan::none().seeded(seed);
        let span = horizon.as_micros().saturating_sub(horizon.as_micros() / 8).max(1);
        let mut state = seed ^ 0xFA_17_FA_17_FA_17_FA_17;
        for k in 0..count {
            state = splitmix64(state.wrapping_add(k as u64));
            let site = SiteId((state % num_sites as u64) as u32);
            state = splitmix64(state);
            let at = SimTime(horizon.as_micros() / 8 + state % span);
            plan = plan.crash(site, at, Some(at + downtime));
        }
        plan
    }

    /// Extra delay for the `msg_index`-th message sent on `from → to` at
    /// `now`: outage deferral (wait out every window containing the
    /// send instant) plus deterministic jitter. Strictly additive — the
    /// caller's FIFO clamp does the rest.
    pub fn extra_delay(
        &self,
        now: SimTime,
        from: SiteId,
        to: SiteId,
        msg_index: u64,
    ) -> SimDuration {
        let mut depart = now;
        // Chase overlapping/chained windows: deferring past one outage
        // may land the departure inside another.
        loop {
            let next = self
                .outages
                .iter()
                .filter(|o| o.from == from && o.to == to && o.start <= depart && depart < o.end)
                .map(|o| o.end)
                .max();
            match next {
                Some(end) => depart = end,
                None => break,
            }
        }
        let mut extra = depart.since(now);
        if self.max_jitter > SimDuration::ZERO {
            let key = self
                .seed
                .wrapping_add((from.0 as u64) << 40)
                .wrapping_add((to.0 as u64) << 20)
                .wrapping_add(msg_index);
            let draw = splitmix64(key) % (self.max_jitter.as_micros() + 1);
            extra = extra + SimDuration::micros(draw);
        }
        extra
    }

    /// True if `site` is down at `now` under this plan (inside any crash
    /// window that has not yet restarted).
    pub fn is_down(&self, site: SiteId, now: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|c| c.site == site && c.at <= now && c.restart.is_none_or(|r| now < r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u32) -> SiteId {
        SiteId(n)
    }

    #[test]
    fn empty_plan_adds_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.extra_delay(SimTime(123), s(0), s(1), 0), SimDuration::ZERO);
        assert!(!plan.is_down(s(0), SimTime(999)));
    }

    #[test]
    fn outage_defers_to_window_end() {
        let plan = FaultPlan::none().outage(s(0), s(1), SimTime(100), SimTime(500));
        // Before / inside / at-end / after:
        assert_eq!(plan.extra_delay(SimTime(50), s(0), s(1), 0), SimDuration::ZERO);
        assert_eq!(plan.extra_delay(SimTime(100), s(0), s(1), 0), SimDuration::micros(400));
        assert_eq!(plan.extra_delay(SimTime(499), s(0), s(1), 0), SimDuration::micros(1));
        assert_eq!(plan.extra_delay(SimTime(500), s(0), s(1), 0), SimDuration::ZERO);
        // Other links unaffected, including the reverse direction.
        assert_eq!(plan.extra_delay(SimTime(200), s(1), s(0), 0), SimDuration::ZERO);
    }

    #[test]
    fn chained_outages_are_chased() {
        let plan = FaultPlan::none().outage(s(0), s(1), SimTime(100), SimTime(300)).outage(
            s(0),
            s(1),
            SimTime(250),
            SimTime(600),
        );
        // Deferring past the first window lands inside the second.
        assert_eq!(plan.extra_delay(SimTime(150), s(0), s(1), 0), SimDuration::micros(450));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let plan = FaultPlan::none().seeded(7).jitter(SimDuration::micros(200));
        for i in 0..64 {
            let d = plan.extra_delay(SimTime(0), s(0), s(1), i);
            assert!(d <= SimDuration::micros(200), "jitter out of bounds: {d:?}");
            assert_eq!(d, plan.extra_delay(SimTime(0), s(0), s(1), i), "not reproducible");
        }
        // Different seeds draw different streams (with overwhelming
        // probability over 64 draws).
        let other = FaultPlan::none().seeded(8).jitter(SimDuration::micros(200));
        assert!(
            (0..64).any(|i| plan.extra_delay(SimTime(0), s(0), s(1), i)
                != other.extra_delay(SimTime(0), s(0), s(1), i)),
            "seed has no effect on jitter"
        );
    }

    #[test]
    fn crash_windows_report_down_sites() {
        let plan = FaultPlan::none().crash(s(2), SimTime(1_000), Some(SimTime(5_000))).crash(
            s(3),
            SimTime(2_000),
            None,
        );
        assert!(!plan.is_down(s(2), SimTime(999)));
        assert!(plan.is_down(s(2), SimTime(1_000)));
        assert!(plan.is_down(s(2), SimTime(4_999)));
        assert!(!plan.is_down(s(2), SimTime(5_000)), "restarted site is up");
        assert!(plan.is_down(s(3), SimTime(1 << 40)), "no restart: down forever");
    }

    #[test]
    fn generated_plans_are_reproducible() {
        let horizon = SimTime(10_000_000);
        let a = FaultPlan::random_crashes(42, 9, horizon, 5, SimDuration::millis(200));
        let b = FaultPlan::random_crashes(42, 9, horizon, 5, SimDuration::millis(200));
        assert_eq!(a, b);
        assert_eq!(a.crashes.len(), 5);
        for c in &a.crashes {
            assert!(c.site.0 < 9);
            assert!(c.at.as_micros() >= horizon.as_micros() / 8);
            assert!(c.at <= horizon);
            assert_eq!(c.restart, Some(c.at + SimDuration::millis(200)));
        }
        let c = FaultPlan::random_crashes(43, 9, horizon, 5, SimDuration::millis(200));
        assert_ne!(a, c, "seed must vary the schedule");
    }
}
