//! Connection handshake and protocol-version negotiation.
//!
//! Every peer connection opens with the dialer sending a [`Hello`]
//! (magic, version range, site id, cluster fingerprint) and the accepter
//! replying with a [`HelloAck`] (chosen version, its site id, and the
//! rejoin `resume_seq`) or a `Reject`. Only after a successful exchange
//! do `Link`/`Ack` frames flow.

use std::io::{Read, Write};

use crate::frame::{read_msg, write_msg, ReadError};
use crate::msg::{Hello, HelloAck, WireMsg};

/// Protocol magic carried in every [`Hello`]: `"RPLN"`.
pub const MAGIC: u32 = 0x5250_4C4E;

/// Lowest wire-protocol version this build speaks.
pub const VERSION_MIN: u16 = 1;

/// Highest wire-protocol version this build speaks. Version 2 adds the
/// [`WireMsg::Batch`] frame (coalesced link payloads, one cumulative ack
/// per batch); a version-1 peer never receives one.
///
/// [`WireMsg::Batch`]: crate::msg::WireMsg::Batch
pub const VERSION_MAX: u16 = 2;

/// First protocol version that understands [`WireMsg::Batch`]; a
/// connection negotiated below this must carry one `Link` frame per
/// payload.
///
/// [`WireMsg::Batch`]: crate::msg::WireMsg::Batch
pub const VERSION_BATCH: u16 = 2;

/// Why a handshake failed.
#[derive(Debug)]
pub enum HandshakeError {
    /// Transport-level failure while exchanging handshake frames.
    Read(ReadError),
    /// The peer refused the connection, with its stated reason.
    Rejected(String),
    /// The peer answered with something other than a handshake frame.
    Unexpected,
    /// The peer acknowledged a version outside our supported range.
    BadVersion(u16),
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::Read(e) => write!(f, "handshake i/o failed: {e}"),
            HandshakeError::Rejected(r) => write!(f, "peer rejected handshake: {r}"),
            HandshakeError::Unexpected => write!(f, "unexpected frame during handshake"),
            HandshakeError::BadVersion(v) => write!(f, "peer chose unsupported version {v}"),
        }
    }
}

impl std::error::Error for HandshakeError {}

impl From<ReadError> for HandshakeError {
    fn from(e: ReadError) -> Self {
        HandshakeError::Read(e)
    }
}

/// Pick the protocol version for a connection from the two sides'
/// supported ranges: the highest version both speak, or `None` when the
/// ranges are disjoint (the accepter then sends `Reject`).
pub fn negotiate(ours: (u16, u16), theirs: (u16, u16)) -> Option<u16> {
    let lo = ours.0.max(theirs.0);
    let hi = ours.1.min(theirs.1);
    (lo <= hi).then_some(hi)
}

/// Run the dialer side of the handshake: send `hello`, await the reply,
/// and validate the negotiated version against our own range.
pub fn client_handshake<S: Read + Write>(
    stream: &mut S,
    hello: &Hello,
) -> Result<HelloAck, HandshakeError> {
    write_msg(stream, &WireMsg::Hello(hello.clone())).map_err(ReadError::Io)?;
    match read_msg(stream)? {
        WireMsg::HelloAck(ack) => {
            if ack.version < hello.version_min || ack.version > hello.version_max {
                return Err(HandshakeError::BadVersion(ack.version));
            }
            Ok(ack)
        }
        WireMsg::Reject(reason) => Err(HandshakeError::Rejected(reason)),
        _ => Err(HandshakeError::Unexpected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_types::SiteId;

    #[test]
    fn negotiation_picks_highest_common() {
        assert_eq!(negotiate((1, 3), (2, 5)), Some(3));
        assert_eq!(negotiate((2, 5), (1, 3)), Some(3));
        assert_eq!(negotiate((1, 1), (1, 1)), Some(1));
        assert_eq!(negotiate((1, 2), (3, 4)), None);
        assert_eq!(negotiate((3, 4), (1, 2)), None);
    }

    /// An in-memory duplex "stream": reads from one buffer, writes to
    /// another.
    struct Duplex<'a> {
        rx: &'a [u8],
        tx: Vec<u8>,
    }

    impl Read for Duplex<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.rx.read(buf)
        }
    }

    impl Write for Duplex<'_> {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.tx.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn hello() -> Hello {
        Hello { site: SiteId(1), version_min: VERSION_MIN, version_max: VERSION_MAX, cluster: 7 }
    }

    #[test]
    fn dialer_accepts_good_ack() {
        let ack = WireMsg::HelloAck(HelloAck { version: 1, site: SiteId(0), resume_seq: 5 });
        let mut wire = Vec::new();
        write_msg(&mut wire, &ack).unwrap();
        let mut stream = Duplex { rx: &wire, tx: Vec::new() };
        let got = client_handshake(&mut stream, &hello()).unwrap();
        assert_eq!(got.resume_seq, 5);
        // The dialer's Hello actually went out first.
        let mut sent = &stream.tx[..];
        assert!(matches!(read_msg(&mut sent).unwrap(), WireMsg::Hello(_)));
    }

    #[test]
    fn dialer_rejects_bad_version_and_reject() {
        let bad = WireMsg::HelloAck(HelloAck { version: 99, site: SiteId(0), resume_seq: 0 });
        let mut wire = Vec::new();
        write_msg(&mut wire, &bad).unwrap();
        let mut stream = Duplex { rx: &wire, tx: Vec::new() };
        assert!(matches!(
            client_handshake(&mut stream, &hello()),
            Err(HandshakeError::BadVersion(99))
        ));

        let rej = WireMsg::Reject("wrong cluster".into());
        let mut wire = Vec::new();
        write_msg(&mut wire, &rej).unwrap();
        let mut stream = Duplex { rx: &wire, tx: Vec::new() };
        assert!(matches!(
            client_handshake(&mut stream, &hello()),
            Err(HandshakeError::Rejected(_))
        ));
    }
}
