//! Message types and their binary encoding.
//!
//! One tag space covers every message that can appear on a connection;
//! which tags are *expected* depends on the connection's role (peer
//! link vs. client session), but decoding is uniform so a misdirected
//! message fails loudly at the protocol layer, not in the parser.
//!
//! | tag | message | direction |
//! |-----|---------|-----------|
//! | 1 | [`Hello`] | dialer → accepter, first frame of a peer link |
//! | 2 | [`HelloAck`] | accepter → dialer |
//! | 3 | `Reject` | accepter → dialer (handshake refused) |
//! | 4 | `Link` (seq + [`Payload`]) | dialer → accepter |
//! | 5 | `Ack` (seq) | accepter → dialer |
//! | 6 | [`ClientMsg`] | client → repld |
//! | 7 | [`ClientReply`] | repld → client |
//! | 8 | `Batch` (first_seq + N [`Payload`]s) | dialer → accepter, version ≥ 2 |

use bytes::{Buf, BufMut, Bytes, BytesMut};

use repl_protocol::timestamp::Timestamp;
use repl_storage::codec::{self, CodecError};
use repl_types::{GlobalTxnId, ItemId, Op, OpKind, SiteId, Value};

use crate::conn::MAGIC;

/// Errors raised while decoding wire bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The frame ended mid-field.
    Truncated,
    /// Unknown message, payload, kind or value tag.
    BadTag(u8),
    /// A length prefix exceeds [`crate::frame::MAX_FRAME_LEN`].
    Oversized(u64),
    /// A `Hello` whose magic number is not [`MAGIC`].
    BadMagic(u32),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Truncated => write!(f, "frame truncated"),
            NetError::BadTag(t) => write!(f, "unknown wire tag {t}"),
            NetError::Oversized(n) => write!(f, "frame length {n} exceeds the frame cap"),
            NetError::BadMagic(m) => write!(f, "bad protocol magic {m:#010x}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated => NetError::Truncated,
            CodecError::BadTag(t) => NetError::BadTag(t),
        }
    }
}

// The propagation-record vocabulary (Subtxn, SubtxnKind, Payload) is
// defined by the sans-I/O protocol core; this crate owns only its wire
// encoding, and re-exports the types for existing users.
pub use repl_protocol::{Payload, Subtxn, SubtxnKind};

/// First frame of a peer connection, sent by the dialer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Dialing site.
    pub site: SiteId,
    /// Lowest protocol version the dialer speaks.
    pub version_min: u16,
    /// Highest protocol version the dialer speaks.
    pub version_max: u16,
    /// Fingerprint of (placement, protocol); both ends must agree they
    /// are in the same cluster before any propagation record flows.
    pub cluster: u64,
}

/// The accepter's handshake reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HelloAck {
    /// Negotiated protocol version (≤ both sides' max).
    pub version: u16,
    /// Accepting site.
    pub site: SiteId,
    /// The accepter's durable high-water mark for the dialer's link:
    /// every sequence ≤ this is already applied, so the dialer prunes
    /// its outbox to here and retransmits the rest (the rejoin
    /// handshake).
    pub resume_seq: u64,
}

/// A typed transaction-execution error carried over the client protocol
/// (mirrors the runtime's `ClusterError` without depending on it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The site holds no copy of an item the transaction reads.
    NoCopy(SiteId, ItemId),
    /// The transaction writes an item whose primary is elsewhere.
    NotPrimary(SiteId, ItemId),
    /// Site id out of range.
    NoSuchSite(SiteId),
    /// The site is down or shutting down.
    Disconnected,
    /// The site is shedding load: its outbox towards `peer` holds
    /// `queued` unacknowledged messages, at or past the configured
    /// high-water mark. Retry later; the transaction was not admitted.
    Backpressure {
        /// The congested peer.
        peer: SiteId,
        /// Messages queued towards it when the transaction was refused.
        queued: u64,
    },
    /// Anything else, as text.
    Other(String),
}

/// Requests a client session sends to a `repld` process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientMsg {
    /// Execute a transaction and reply [`ClientReply::Executed`].
    Execute(Vec<Op>),
    /// Non-transactional read of one copy; reply [`ClientReply::Cell`].
    Peek(ItemId),
    /// Progress counters; reply [`ClientReply::Stats`].
    Stats,
    /// Canonical bytes of the site's copy state; reply
    /// [`ClientReply::State`].
    CopyState,
    /// Install the peer address map and start dialing; reply
    /// [`ClientReply::Ok`]. Used by launchers that bind listeners on
    /// ephemeral ports and only then learn the cluster's addresses.
    Peers(Vec<(SiteId, String)>),
    /// Fault injection: drop both connections to/from `peer`, forcing a
    /// reconnect + retransmission cycle; reply [`ClientReply::Ok`].
    KillConn(SiteId),
    /// Stop the site process gracefully; reply [`ClientReply::Ok`].
    Shutdown,
    /// The site's committed-transaction history (for the one-copy
    /// serializability checker); reply [`ClientReply::History`].
    History,
}

/// One committed transaction in a [`ClientReply::History`] reply:
/// `(gid, reads, writes)` — `reads` pairing each item with the gid of
/// the version read (`None` for the initial version). Plain tuples
/// rather than the analysis crate's types so the wire layer stays
/// dependency-free; the checker reassembles them.
pub type HistoryTxn = (GlobalTxnId, Vec<(ItemId, Option<GlobalTxnId>)>, Vec<ItemId>);

/// Replies a `repld` process sends on a client session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientReply {
    /// Outcome of [`ClientMsg::Execute`].
    Executed(Result<GlobalTxnId, ExecError>),
    /// Outcome of [`ClientMsg::Peek`].
    Cell(Option<(Value, Option<GlobalTxnId>)>),
    /// Outcome of [`ClientMsg::Stats`].
    Stats {
        /// This process's contribution to the cluster-wide count of
        /// replica applications still in flight (commits here add the
        /// destination count, applications here subtract one; may be
        /// negative per process, sums to ≥ 0 cluster-wide).
        outstanding: i64,
        /// Transactions committed at this site.
        committed: u64,
        /// Malformed, oversized or mis-typed client frames this process
        /// has refused (each one also got a typed [`ClientReply::Err`]
        /// before its connection was dropped).
        decode_errors: u64,
        /// Peers this site currently classifies `Up`.
        peers_up: u32,
        /// Peers this site currently classifies `Suspect` (traffic
        /// pending, no ack/frame progress for the suspect window).
        peers_suspect: u32,
        /// Peers this site currently classifies `Down` (no progress for
        /// the down window; the retry policy keeps probing).
        peers_down: u32,
    },
    /// Outcome of [`ClientMsg::CopyState`].
    State(Bytes),
    /// Generic success.
    Ok,
    /// Generic failure, as text.
    Err(String),
    /// Outcome of [`ClientMsg::History`]: every transaction committed
    /// at this site, in local commit order.
    History(Vec<HistoryTxn>),
}

/// Any message that can appear on a connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireMsg {
    /// Peer handshake request.
    Hello(Hello),
    /// Peer handshake reply.
    HelloAck(HelloAck),
    /// Handshake refused (version ranges disjoint, wrong cluster, …).
    Reject(String),
    /// One reliable-link message: the link's sequence number plus the
    /// payload. The sending site is the connection's dialer, established
    /// by its `Hello` — it is not repeated per frame.
    Link {
        /// Sequence number on the dialer → accepter link.
        seq: u64,
        /// The payload.
        payload: Payload,
    },
    /// Cumulative acknowledgement: every link sequence ≤ `seq` received
    /// on this connection has been accepted durably (one ack covers a
    /// whole [`WireMsg::Batch`]).
    Ack {
        /// The acknowledged high-water mark.
        seq: u64,
    },
    /// Several consecutive link messages coalesced into one frame
    /// (negotiated version ≥ 2 only): the payloads carry sequence
    /// numbers `first_seq`, `first_seq + 1`, …, `first_seq + N - 1`, and
    /// the receiver answers with a single cumulative [`WireMsg::Ack`]
    /// for the last of them. Decoding caps `N` at
    /// [`MAX_BATCH_PAYLOADS`]; senders must split, not hope.
    Batch {
        /// Sequence number of the first payload on the link.
        first_seq: u64,
        /// The coalesced payloads, in sequence order (≥ 1).
        payloads: Vec<Payload>,
    },
    /// A client request.
    Client(ClientMsg),
    /// A client reply.
    Reply(ClientReply),
}

impl WireMsg {
    /// The message's kind, for error reporting ("expected X, got Y").
    pub fn kind_name(&self) -> &'static str {
        match self {
            WireMsg::Hello(_) => "Hello",
            WireMsg::HelloAck(_) => "HelloAck",
            WireMsg::Reject(_) => "Reject",
            WireMsg::Link { .. } => "Link",
            WireMsg::Ack { .. } => "Ack",
            WireMsg::Client(_) => "Client",
            WireMsg::Reply(_) => "Reply",
            WireMsg::Batch { .. } => "Batch",
        }
    }
}

/// Hard cap on the payload count of one [`WireMsg::Batch`]. A decoded
/// count past this is rejected as [`NetError::Oversized`] before any
/// payload is parsed, bounding allocation from hostile length prefixes;
/// senders split batches at this count (and at the frame cap) instead.
pub const MAX_BATCH_PAYLOADS: usize = 4096;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_timestamp(buf: &mut BytesMut, ts: &Timestamp) {
    buf.put_u64(ts.epoch);
    buf.put_u32(ts.tuples.len() as u32);
    for (site, lts) in &ts.tuples {
        buf.put_u32(site.0);
        buf.put_u64(*lts);
    }
}

fn get_timestamp(buf: &mut Bytes) -> Result<Timestamp, NetError> {
    let epoch = codec::get_u64(buf)?;
    let n = codec::get_u32(buf)? as usize;
    let mut tuples = Vec::with_capacity(n.min(buf.len() / 12));
    for _ in 0..n {
        let site = SiteId(codec::get_u32(buf)?);
        let lts = codec::get_u64(buf)?;
        tuples.push((site, lts));
    }
    Ok(Timestamp { epoch, tuples })
}

fn put_subtxn(buf: &mut BytesMut, sub: &Subtxn) {
    codec::put_gid(buf, sub.gid);
    buf.put_u32(sub.origin.0);
    buf.put_u8(match sub.kind {
        SubtxnKind::Normal => 0,
        SubtxnKind::Dummy => 1,
        SubtxnKind::Special => 2,
    });
    match &sub.ts {
        None => buf.put_u8(0),
        Some(ts) => {
            buf.put_u8(1);
            put_timestamp(buf, ts);
        }
    }
    buf.put_u32(sub.writes.len() as u32);
    for (item, value) in &sub.writes {
        buf.put_u32(item.0);
        codec::put_value(buf, value);
    }
    buf.put_u32(sub.dest_sites.len() as u32);
    for d in &sub.dest_sites {
        buf.put_u32(d.0);
    }
}

fn get_subtxn(buf: &mut Bytes) -> Result<Subtxn, NetError> {
    let gid = codec::get_gid(buf)?;
    let origin = SiteId(codec::get_u32(buf)?);
    let kind = match codec::get_u8(buf)? {
        0 => SubtxnKind::Normal,
        1 => SubtxnKind::Dummy,
        2 => SubtxnKind::Special,
        t => return Err(NetError::BadTag(t)),
    };
    let ts = match codec::get_u8(buf)? {
        0 => None,
        1 => Some(get_timestamp(buf)?),
        t => return Err(NetError::BadTag(t)),
    };
    let n_writes = codec::get_u32(buf)? as usize;
    let mut writes = Vec::with_capacity(n_writes.min(buf.len() / 5));
    for _ in 0..n_writes {
        let item = ItemId(codec::get_u32(buf)?);
        let value = codec::get_value(buf)?;
        writes.push((item, value));
    }
    let n_dests = codec::get_u32(buf)? as usize;
    let mut dest_sites = Vec::with_capacity(n_dests.min(buf.len() / 4));
    for _ in 0..n_dests {
        dest_sites.push(SiteId(codec::get_u32(buf)?));
    }
    Ok(Subtxn { gid, origin, kind, ts, writes, dest_sites })
}

fn put_payload(buf: &mut BytesMut, payload: &Payload) {
    match payload {
        Payload::Subtxn(sub) => {
            buf.put_u8(1);
            put_subtxn(buf, sub);
        }
        Payload::Decision { gid, commit } => {
            buf.put_u8(2);
            codec::put_gid(buf, *gid);
            buf.put_u8(u8::from(*commit));
        }
    }
}

fn get_payload(buf: &mut Bytes) -> Result<Payload, NetError> {
    match codec::get_u8(buf)? {
        1 => Ok(Payload::Subtxn(get_subtxn(buf)?)),
        2 => {
            let gid = codec::get_gid(buf)?;
            let commit = match codec::get_u8(buf)? {
                0 => false,
                1 => true,
                t => return Err(NetError::BadTag(t)),
            };
            Ok(Payload::Decision { gid, commit })
        }
        t => Err(NetError::BadTag(t)),
    }
}

fn put_ops(buf: &mut BytesMut, ops: &[Op]) {
    buf.put_u32(ops.len() as u32);
    for op in ops {
        buf.put_u8(match op.kind {
            OpKind::Read => 0,
            OpKind::Write => 1,
        });
        buf.put_u32(op.item.0);
        codec::put_value(buf, &op.value);
    }
}

fn get_ops(buf: &mut Bytes) -> Result<Vec<Op>, NetError> {
    let n = codec::get_u32(buf)? as usize;
    let mut ops = Vec::with_capacity(n.min(buf.len() / 6));
    for _ in 0..n {
        let kind = match codec::get_u8(buf)? {
            0 => OpKind::Read,
            1 => OpKind::Write,
            t => return Err(NetError::BadTag(t)),
        };
        let item = ItemId(codec::get_u32(buf)?);
        let value = codec::get_value(buf)?;
        ops.push(Op { item, kind, value });
    }
    Ok(ops)
}

fn put_exec_error(buf: &mut BytesMut, e: &ExecError) {
    match e {
        ExecError::NoCopy(s, i) => {
            buf.put_u8(1);
            buf.put_u32(s.0);
            buf.put_u32(i.0);
        }
        ExecError::NotPrimary(s, i) => {
            buf.put_u8(2);
            buf.put_u32(s.0);
            buf.put_u32(i.0);
        }
        ExecError::NoSuchSite(s) => {
            buf.put_u8(3);
            buf.put_u32(s.0);
        }
        ExecError::Disconnected => buf.put_u8(4),
        ExecError::Other(msg) => {
            buf.put_u8(5);
            codec::put_str(buf, msg);
        }
        ExecError::Backpressure { peer, queued } => {
            buf.put_u8(6);
            buf.put_u32(peer.0);
            buf.put_u64(*queued);
        }
    }
}

fn get_exec_error(buf: &mut Bytes) -> Result<ExecError, NetError> {
    Ok(match codec::get_u8(buf)? {
        1 => ExecError::NoCopy(SiteId(codec::get_u32(buf)?), ItemId(codec::get_u32(buf)?)),
        2 => ExecError::NotPrimary(SiteId(codec::get_u32(buf)?), ItemId(codec::get_u32(buf)?)),
        3 => ExecError::NoSuchSite(SiteId(codec::get_u32(buf)?)),
        4 => ExecError::Disconnected,
        5 => ExecError::Other(codec::get_str(buf)?),
        6 => ExecError::Backpressure {
            peer: SiteId(codec::get_u32(buf)?),
            queued: codec::get_u64(buf)?,
        },
        t => return Err(NetError::BadTag(t)),
    })
}

fn put_client(buf: &mut BytesMut, msg: &ClientMsg) {
    match msg {
        ClientMsg::Execute(ops) => {
            buf.put_u8(1);
            put_ops(buf, ops);
        }
        ClientMsg::Peek(item) => {
            buf.put_u8(2);
            buf.put_u32(item.0);
        }
        ClientMsg::Stats => buf.put_u8(3),
        ClientMsg::CopyState => buf.put_u8(4),
        ClientMsg::Peers(addrs) => {
            buf.put_u8(5);
            buf.put_u32(addrs.len() as u32);
            for (site, addr) in addrs {
                buf.put_u32(site.0);
                codec::put_str(buf, addr);
            }
        }
        ClientMsg::KillConn(peer) => {
            buf.put_u8(6);
            buf.put_u32(peer.0);
        }
        ClientMsg::Shutdown => buf.put_u8(7),
        ClientMsg::History => buf.put_u8(8),
    }
}

fn get_client(buf: &mut Bytes) -> Result<ClientMsg, NetError> {
    Ok(match codec::get_u8(buf)? {
        1 => ClientMsg::Execute(get_ops(buf)?),
        2 => ClientMsg::Peek(ItemId(codec::get_u32(buf)?)),
        3 => ClientMsg::Stats,
        4 => ClientMsg::CopyState,
        5 => {
            let n = codec::get_u32(buf)? as usize;
            let mut addrs = Vec::with_capacity(n.min(buf.len() / 8));
            for _ in 0..n {
                let site = SiteId(codec::get_u32(buf)?);
                let addr = codec::get_str(buf)?;
                addrs.push((site, addr));
            }
            ClientMsg::Peers(addrs)
        }
        6 => ClientMsg::KillConn(SiteId(codec::get_u32(buf)?)),
        7 => ClientMsg::Shutdown,
        8 => ClientMsg::History,
        t => return Err(NetError::BadTag(t)),
    })
}

fn put_reply(buf: &mut BytesMut, reply: &ClientReply) {
    match reply {
        ClientReply::Executed(Ok(gid)) => {
            buf.put_u8(1);
            codec::put_gid(buf, *gid);
        }
        ClientReply::Executed(Err(e)) => {
            buf.put_u8(2);
            put_exec_error(buf, e);
        }
        ClientReply::Cell(cell) => {
            buf.put_u8(3);
            match cell {
                None => buf.put_u8(0),
                Some((value, writer)) => {
                    buf.put_u8(1);
                    codec::put_value(buf, value);
                    match writer {
                        None => buf.put_u8(0),
                        Some(gid) => {
                            buf.put_u8(1);
                            codec::put_gid(buf, *gid);
                        }
                    }
                }
            }
        }
        ClientReply::Stats {
            outstanding,
            committed,
            decode_errors,
            peers_up,
            peers_suspect,
            peers_down,
        } => {
            buf.put_u8(4);
            buf.put_i64(*outstanding);
            buf.put_u64(*committed);
            buf.put_u64(*decode_errors);
            buf.put_u32(*peers_up);
            buf.put_u32(*peers_suspect);
            buf.put_u32(*peers_down);
        }
        ClientReply::State(bytes) => {
            buf.put_u8(5);
            buf.put_u64(bytes.len() as u64);
            buf.put_slice(bytes);
        }
        ClientReply::Ok => buf.put_u8(6),
        ClientReply::Err(msg) => {
            buf.put_u8(7);
            codec::put_str(buf, msg);
        }
        ClientReply::History(txns) => {
            buf.put_u8(8);
            buf.put_u32(txns.len() as u32);
            for (gid, reads, writes) in txns {
                codec::put_gid(buf, *gid);
                buf.put_u32(reads.len() as u32);
                for (item, version) in reads {
                    buf.put_u32(item.0);
                    match version {
                        None => buf.put_u8(0),
                        Some(writer) => {
                            buf.put_u8(1);
                            codec::put_gid(buf, *writer);
                        }
                    }
                }
                buf.put_u32(writes.len() as u32);
                for item in writes {
                    buf.put_u32(item.0);
                }
            }
        }
    }
}

fn get_reply(buf: &mut Bytes) -> Result<ClientReply, NetError> {
    Ok(match codec::get_u8(buf)? {
        1 => ClientReply::Executed(Ok(codec::get_gid(buf)?)),
        2 => ClientReply::Executed(Err(get_exec_error(buf)?)),
        3 => match codec::get_u8(buf)? {
            0 => ClientReply::Cell(None),
            1 => {
                let value = codec::get_value(buf)?;
                let writer = match codec::get_u8(buf)? {
                    0 => None,
                    1 => Some(codec::get_gid(buf)?),
                    t => return Err(NetError::BadTag(t)),
                };
                ClientReply::Cell(Some((value, writer)))
            }
            t => return Err(NetError::BadTag(t)),
        },
        4 => {
            if buf.len() < 36 {
                return Err(NetError::Truncated);
            }
            let outstanding = buf.get_i64();
            let committed = buf.get_u64();
            let decode_errors = buf.get_u64();
            let peers_up = buf.get_u32();
            let peers_suspect = buf.get_u32();
            let peers_down = buf.get_u32();
            ClientReply::Stats {
                outstanding,
                committed,
                decode_errors,
                peers_up,
                peers_suspect,
                peers_down,
            }
        }
        5 => {
            let len = codec::get_u64(buf)? as usize;
            if buf.len() < len {
                return Err(NetError::Truncated);
            }
            ClientReply::State(buf.copy_to_bytes(len))
        }
        6 => ClientReply::Ok,
        7 => ClientReply::Err(codec::get_str(buf)?),
        8 => {
            let n = codec::get_u32(buf)? as usize;
            // Smallest possible txn: gid + two zero counts.
            let mut txns = Vec::with_capacity(n.min(buf.len() / 20));
            for _ in 0..n {
                let gid = codec::get_gid(buf)?;
                let reads_n = codec::get_u32(buf)? as usize;
                let mut reads = Vec::with_capacity(reads_n.min(buf.len() / 5));
                for _ in 0..reads_n {
                    let item = ItemId(codec::get_u32(buf)?);
                    let version = match codec::get_u8(buf)? {
                        0 => None,
                        1 => Some(codec::get_gid(buf)?),
                        t => return Err(NetError::BadTag(t)),
                    };
                    reads.push((item, version));
                }
                let writes_n = codec::get_u32(buf)? as usize;
                let mut writes = Vec::with_capacity(writes_n.min(buf.len() / 4));
                for _ in 0..writes_n {
                    writes.push(ItemId(codec::get_u32(buf)?));
                }
                txns.push((gid, reads, writes));
            }
            ClientReply::History(txns)
        }
        t => return Err(NetError::BadTag(t)),
    })
}

impl WireMsg {
    /// Encode the message body (tag + fields), without a length prefix.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            WireMsg::Hello(h) => {
                buf.put_u8(1);
                buf.put_u32(MAGIC);
                buf.put_u32(h.site.0);
                buf.put_u16(h.version_min);
                buf.put_u16(h.version_max);
                buf.put_u64(h.cluster);
            }
            WireMsg::HelloAck(a) => {
                buf.put_u8(2);
                buf.put_u16(a.version);
                buf.put_u32(a.site.0);
                buf.put_u64(a.resume_seq);
            }
            WireMsg::Reject(reason) => {
                buf.put_u8(3);
                codec::put_str(&mut buf, reason);
            }
            WireMsg::Link { seq, payload } => {
                buf.put_u8(4);
                buf.put_u64(*seq);
                put_payload(&mut buf, payload);
            }
            WireMsg::Ack { seq } => {
                buf.put_u8(5);
                buf.put_u64(*seq);
            }
            WireMsg::Client(msg) => {
                buf.put_u8(6);
                put_client(&mut buf, msg);
            }
            WireMsg::Reply(reply) => {
                buf.put_u8(7);
                put_reply(&mut buf, reply);
            }
            WireMsg::Batch { first_seq, payloads } => {
                debug_assert!(
                    !payloads.is_empty() && payloads.len() <= MAX_BATCH_PAYLOADS,
                    "batch senders split before encoding"
                );
                buf.put_u8(8);
                buf.put_u64(*first_seq);
                buf.put_u32(payloads.len() as u32);
                for payload in payloads {
                    put_payload(&mut buf, payload);
                }
            }
        }
        buf.freeze()
    }

    /// Decode one message body (tag + fields). Total: every input yields
    /// `Ok` or a clean error. Trailing bytes after a well-formed message
    /// are an error — frames carry exactly one message.
    pub fn decode(mut buf: Bytes) -> Result<WireMsg, NetError> {
        let msg = match codec::get_u8(&mut buf)? {
            1 => {
                let magic = codec::get_u32(&mut buf)?;
                if magic != MAGIC {
                    return Err(NetError::BadMagic(magic));
                }
                let site = SiteId(codec::get_u32(&mut buf)?);
                if buf.len() < 4 {
                    return Err(NetError::Truncated);
                }
                let version_min = buf.get_u16();
                let version_max = buf.get_u16();
                let cluster = codec::get_u64(&mut buf)?;
                WireMsg::Hello(Hello { site, version_min, version_max, cluster })
            }
            2 => {
                if buf.len() < 2 {
                    return Err(NetError::Truncated);
                }
                let version = buf.get_u16();
                let site = SiteId(codec::get_u32(&mut buf)?);
                let resume_seq = codec::get_u64(&mut buf)?;
                WireMsg::HelloAck(HelloAck { version, site, resume_seq })
            }
            3 => WireMsg::Reject(codec::get_str(&mut buf)?),
            4 => {
                let seq = codec::get_u64(&mut buf)?;
                let payload = get_payload(&mut buf)?;
                WireMsg::Link { seq, payload }
            }
            5 => WireMsg::Ack { seq: codec::get_u64(&mut buf)? },
            6 => WireMsg::Client(get_client(&mut buf)?),
            7 => WireMsg::Reply(get_reply(&mut buf)?),
            8 => {
                let first_seq = codec::get_u64(&mut buf)?;
                let n = codec::get_u32(&mut buf)? as usize;
                if n == 0 || n > MAX_BATCH_PAYLOADS {
                    // An oversized count is rejected outright — not
                    // silently split — so both ends keep identical
                    // sequence accounting.
                    return Err(NetError::Oversized(n as u64));
                }
                let mut payloads = Vec::with_capacity(n.min(buf.len() / 8).max(1));
                for _ in 0..n {
                    payloads.push(get_payload(&mut buf)?);
                }
                WireMsg::Batch { first_seq, payloads }
            }
            t => return Err(NetError::BadTag(t)),
        };
        if !buf.is_empty() {
            // Trailing garbage means the sender and receiver disagree on
            // the layout; surface it rather than silently dropping bytes.
            return Err(NetError::BadTag(0));
        }
        Ok(msg)
    }
}

/// Pack a run of consecutive link payloads (first one carrying sequence
/// `first_seq`) into wire messages for a version ≥ 2 connection: a run
/// of one stays a plain [`WireMsg::Link`]; longer runs become
/// [`WireMsg::Batch`] frames, split so no batch holds more than
/// [`MAX_BATCH_PAYLOADS`] payloads or encodes past the frame cap.
pub fn batch_messages(first_seq: u64, payloads: Vec<Payload>) -> Vec<WireMsg> {
    // Tag + first_seq + count; what the batch wrapper itself costs.
    const BATCH_HEADER: usize = 1 + 8 + 4;
    let budget = crate::frame::MAX_FRAME_LEN as usize - BATCH_HEADER;
    let mut out = Vec::new();
    let mut seq = first_seq;
    let mut run: Vec<Payload> = Vec::new();
    let mut run_bytes = 0usize;
    for payload in payloads {
        let mut scratch = BytesMut::new();
        put_payload(&mut scratch, &payload);
        let sz = scratch.len();
        if !run.is_empty() && (run_bytes + sz > budget || run.len() >= MAX_BATCH_PAYLOADS) {
            seq = flush_run(&mut out, seq, std::mem::take(&mut run));
            run_bytes = 0;
        }
        run.push(payload);
        run_bytes += sz;
    }
    flush_run(&mut out, seq, run);
    out
}

fn flush_run(out: &mut Vec<WireMsg>, seq: u64, mut run: Vec<Payload>) -> u64 {
    match run.len() {
        0 => seq,
        1 => {
            // replint: allow(RL008) -- len matched as 1 on the arm above
            out.push(WireMsg::Link { seq, payload: run.pop().expect("len checked") });
            seq + 1
        }
        n => {
            out.push(WireMsg::Batch { first_seq: seq, payloads: run });
            seq + n as u64
        }
    }
}

// ---------------------------------------------------------------------
// Copy-state images and cluster fingerprints
// ---------------------------------------------------------------------

/// Encode a site's copy state as canonical bytes: cell count, then
/// `(item, value, writer)` cells which the caller must supply in
/// ascending item order. Two sites replaying the same committed history
/// produce byte-identical images — the equivalence oracle of the
/// transport tests.
pub fn encode_cells(cells: &[(ItemId, Value, Option<GlobalTxnId>)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + cells.len() * 24);
    buf.put_u32(cells.len() as u32);
    for (item, value, writer) in cells {
        codec::put_cell(&mut buf, *item, value, *writer);
    }
    buf.freeze()
}

/// Decode an image produced by [`encode_cells`].
pub fn decode_cells(mut buf: Bytes) -> Result<Vec<(ItemId, Value, Option<GlobalTxnId>)>, NetError> {
    let n = codec::get_u32(&mut buf)? as usize;
    let mut cells = Vec::with_capacity(n.min(buf.len() / 6));
    for _ in 0..n {
        cells.push(codec::get_cell(&mut buf)?);
    }
    Ok(cells)
}

/// Fingerprint of a cluster's identity — FNV-1a over the placement spec
/// and protocol name. Carried in [`Hello`] so two processes configured
/// for different clusters refuse to exchange propagation records.
pub fn cluster_fingerprint(placement_spec: &str, protocol: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in placement_spec.bytes().chain([0u8]).chain(protocol.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: WireMsg) {
        let decoded = WireMsg::decode(msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn handshake_roundtrips() {
        roundtrip(WireMsg::Hello(Hello {
            site: SiteId(2),
            version_min: 1,
            version_max: 3,
            cluster: 0xDEADBEEF,
        }));
        roundtrip(WireMsg::HelloAck(HelloAck { version: 1, site: SiteId(0), resume_seq: 17 }));
        roundtrip(WireMsg::Reject("version ranges disjoint".into()));
    }

    #[test]
    fn link_roundtrips() {
        let ts = Timestamp { epoch: 3, tuples: vec![(SiteId(0), 5), (SiteId(2), 1)] };
        roundtrip(WireMsg::Link {
            seq: 9,
            payload: Payload::Subtxn(Subtxn {
                gid: GlobalTxnId::new(SiteId(1), 44),
                origin: SiteId(1),
                kind: SubtxnKind::Normal,
                ts: Some(ts),
                writes: vec![(ItemId(0), Value::int(-3)), (ItemId(4), Value::Bytes(vec![1]))],
                dest_sites: vec![SiteId(0), SiteId(2)],
            }),
        });
        roundtrip(WireMsg::Link {
            seq: 1,
            payload: Payload::Decision { gid: GlobalTxnId::new(SiteId(0), 7), commit: true },
        });
        roundtrip(WireMsg::Ack { seq: 12 });
    }

    #[test]
    fn batch_roundtrips() {
        roundtrip(WireMsg::Batch {
            first_seq: 41,
            payloads: vec![
                Payload::Subtxn(Subtxn {
                    gid: GlobalTxnId::new(SiteId(1), 44),
                    origin: SiteId(1),
                    kind: SubtxnKind::Normal,
                    ts: None,
                    writes: vec![(ItemId(0), Value::int(7))],
                    dest_sites: vec![SiteId(0)],
                }),
                Payload::Decision { gid: GlobalTxnId::new(SiteId(0), 7), commit: false },
            ],
        });
    }

    #[test]
    fn oversized_or_empty_batch_rejected() {
        for n in [0u32, (MAX_BATCH_PAYLOADS + 1) as u32] {
            let mut raw = BytesMut::new();
            raw.put_u8(8);
            raw.put_u64(5);
            raw.put_u32(n);
            assert!(matches!(
                WireMsg::decode(raw.freeze()),
                Err(NetError::Oversized(m)) if m == u64::from(n)
            ));
        }
    }

    #[test]
    fn client_roundtrips() {
        roundtrip(WireMsg::Client(ClientMsg::Execute(vec![
            Op::write(ItemId(1), 9),
            Op::read(ItemId(0)),
        ])));
        roundtrip(WireMsg::Client(ClientMsg::Peek(ItemId(3))));
        roundtrip(WireMsg::Client(ClientMsg::Stats));
        roundtrip(WireMsg::Client(ClientMsg::CopyState));
        roundtrip(WireMsg::Client(ClientMsg::Peers(vec![
            (SiteId(0), "127.0.0.1:9000".into()),
            (SiteId(1), "127.0.0.1:9001".into()),
        ])));
        roundtrip(WireMsg::Client(ClientMsg::KillConn(SiteId(1))));
        roundtrip(WireMsg::Client(ClientMsg::Shutdown));
        roundtrip(WireMsg::Client(ClientMsg::History));
    }

    #[test]
    fn reply_roundtrips() {
        roundtrip(WireMsg::Reply(ClientReply::Executed(Ok(GlobalTxnId::new(SiteId(0), 3)))));
        roundtrip(WireMsg::Reply(ClientReply::Executed(Err(ExecError::NotPrimary(
            SiteId(1),
            ItemId(2),
        )))));
        roundtrip(WireMsg::Reply(ClientReply::Executed(Err(ExecError::Other("boom".into())))));
        roundtrip(WireMsg::Reply(ClientReply::Cell(None)));
        roundtrip(WireMsg::Reply(ClientReply::Cell(Some((
            Value::int(5),
            Some(GlobalTxnId::new(SiteId(2), 1)),
        )))));
        roundtrip(WireMsg::Reply(ClientReply::Executed(Err(ExecError::Backpressure {
            peer: SiteId(2),
            queued: 100_000,
        }))));
        roundtrip(WireMsg::Reply(ClientReply::Stats {
            outstanding: -2,
            committed: 10,
            decode_errors: 3,
            peers_up: 2,
            peers_suspect: 1,
            peers_down: 1,
        }));
        roundtrip(WireMsg::Reply(ClientReply::State(Bytes::from_static(&[1, 2, 3]))));
        roundtrip(WireMsg::Reply(ClientReply::Ok));
        roundtrip(WireMsg::Reply(ClientReply::Err("nope".into())));
        roundtrip(WireMsg::Reply(ClientReply::History(vec![
            (
                GlobalTxnId::new(SiteId(0), 1),
                vec![(ItemId(0), None), (ItemId(1), Some(GlobalTxnId::new(SiteId(1), 4)))],
                vec![ItemId(0)],
            ),
            (GlobalTxnId::new(SiteId(2), 9), vec![], vec![ItemId(2), ItemId(3)]),
        ])));
    }

    #[test]
    fn bad_magic_rejected() {
        let hello =
            WireMsg::Hello(Hello { site: SiteId(0), version_min: 1, version_max: 1, cluster: 1 });
        let mut raw = hello.encode().to_vec();
        raw[1] ^= 0xFF; // corrupt the magic
        assert!(matches!(WireMsg::decode(Bytes::from(raw)), Err(NetError::BadMagic(_))));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut raw = WireMsg::Ack { seq: 1 }.encode().to_vec();
        raw.push(0);
        assert!(WireMsg::decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn batch_messages_split_and_keep_sequences_contiguous() {
        let decision =
            |n: u64| Payload::Decision { gid: GlobalTxnId::new(SiteId(0), n), commit: true };
        // A run of one degrades to a plain Link.
        let msgs = batch_messages(7, vec![decision(0)]);
        assert!(matches!(msgs.as_slice(), [WireMsg::Link { seq: 7, .. }]));
        // A run past the payload cap splits; sequences stay contiguous.
        let n = MAX_BATCH_PAYLOADS + 3;
        let msgs = batch_messages(100, (0..n as u64).map(decision).collect());
        assert_eq!(msgs.len(), 2);
        match (&msgs[0], &msgs[1]) {
            (
                WireMsg::Batch { first_seq: a, payloads: pa },
                WireMsg::Batch { first_seq: b, payloads: pb },
            ) => {
                assert_eq!((*a, pa.len()), (100, MAX_BATCH_PAYLOADS));
                assert_eq!((*b, pb.len()), (100 + MAX_BATCH_PAYLOADS as u64, 3));
            }
            other => panic!("unexpected split: {other:?}"),
        }
        // Every emitted frame fits the frame cap.
        for m in &msgs {
            assert!(m.encode().len() <= crate::frame::MAX_FRAME_LEN as usize);
        }
    }

    #[test]
    fn cells_roundtrip_and_are_canonical() {
        let cells = vec![
            (ItemId(0), Value::int(5), Some(GlobalTxnId::new(SiteId(0), 1))),
            (ItemId(3), Value::Initial, None),
        ];
        let img = encode_cells(&cells);
        assert_eq!(decode_cells(img.clone()).unwrap(), cells);
        assert_eq!(img, encode_cells(&cells));
    }

    #[test]
    fn fingerprint_distinguishes_clusters() {
        let a = cluster_fingerprint("3|0:1,2|1:2", "dagwt");
        assert_eq!(a, cluster_fingerprint("3|0:1,2|1:2", "dagwt"));
        assert_ne!(a, cluster_fingerprint("3|0:1,2|1:2", "dagt"));
        assert_ne!(a, cluster_fingerprint("3|0:1,2", "dagwt"));
    }
}
