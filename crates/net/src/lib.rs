//! The wire protocol of the networked runtime.
//!
//! The paper's prototype ran one DataBlitz-backed site per machine with
//! TCP sockets carrying propagation traffic (§5.1); this crate is the
//! corresponding wire layer for the `repl-runtime` deployment: a
//! versioned, length-prefixed binary framing for every inter-site
//! message — propagation records, acknowledgements, commit decisions,
//! and the epoch/rejoin connection handshake — plus the client protocol
//! spoken by the `repld` control connection.
//!
//! Design rules, shared with the WAL image format in `repl-storage`:
//!
//! * **Total decoding.** Any byte sequence decodes to `Ok` or a clean
//!   [`NetError`]; no panic, no unbounded allocation. Length headers are
//!   distrusted: claimed counts are clamped against the bytes actually
//!   present before any `Vec::with_capacity`.
//! * **Explicit layout.** Every field is written with fixed-width
//!   big-endian integers through `bytes`; values and transaction ids
//!   reuse the `repl_storage::codec` helpers so a propagation record
//!   and a WAL record agree byte-for-byte on their common fields.
//! * **Version negotiation.** Connections open with a
//!   [`Hello`]/[`HelloAck`] exchange carrying a protocol version range
//!   and a cluster fingerprint; see [`conn`] and DESIGN.md §9.
//!
//! Frame layout (see [`frame`]): a `u32` length prefix (at most
//! [`frame::MAX_FRAME_LEN`]), then a one-byte message tag, then the
//! message body.

#![warn(missing_docs)]

pub mod conn;
pub mod frame;
pub mod msg;

pub use conn::{
    client_handshake, negotiate, HandshakeError, MAGIC, VERSION_BATCH, VERSION_MAX, VERSION_MIN,
};
pub use frame::{
    decode_framed, encode_framed, read_msg, write_msg, FrameReader, ReadError, MAX_FRAME_LEN,
};
pub use msg::{
    batch_messages, cluster_fingerprint, decode_cells, encode_cells, ClientMsg, ClientReply,
    ExecError, Hello, HelloAck, HistoryTxn, NetError, Payload, Subtxn, SubtxnKind, WireMsg,
    MAX_BATCH_PAYLOADS,
};
