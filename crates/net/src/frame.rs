//! Length-prefixed framing over byte streams.
//!
//! A frame is a `u32` big-endian length `L` (0 < L ≤ [`MAX_FRAME_LEN`])
//! followed by `L` bytes holding exactly one encoded [`WireMsg`]. The
//! length is validated *before* any allocation, so a hostile or corrupt
//! peer claiming a multi-gigabyte frame costs four bytes of reading, not
//! memory.

use std::io::{self, Read, Write};

use bytes::{BufMut, Bytes, BytesMut};

use crate::msg::{NetError, WireMsg};

/// Upper bound on a frame body. Generously above any legitimate message
/// (a propagation record is bounded by transaction size), far below
/// anything that could act as an allocation amplifier.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Errors raised while reading a frame from a stream.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying stream failed or closed.
    Io(io::Error),
    /// The frame arrived intact but its body did not decode.
    Decode(NetError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "read failed: {e}"),
            ReadError::Decode(e) => write!(f, "frame malformed: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<NetError> for ReadError {
    fn from(e: NetError) -> Self {
        ReadError::Decode(e)
    }
}

/// Encode `msg` as one frame: length prefix plus body.
pub fn encode_framed(msg: &WireMsg) -> Bytes {
    let body = msg.encode();
    debug_assert!(body.len() as u64 <= u64::from(MAX_FRAME_LEN));
    let mut buf = BytesMut::with_capacity(4 + body.len());
    buf.put_u32(body.len() as u32);
    buf.put_slice(&body);
    buf.freeze()
}

/// Decode one frame from `buf`, if a complete one is present.
///
/// Returns `Ok(None)` when more bytes are needed, `Ok(Some(msg))` after
/// consuming a whole frame, and an error for an invalid length prefix or
/// body — the connection should then be dropped, since framing is lost.
pub fn decode_framed(buf: &mut BytesMut) -> Result<Option<WireMsg>, NetError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(NetError::Oversized(u64::from(len)));
    }
    let len = len as usize;
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    let body = buf.split_to(len).freeze();
    WireMsg::decode(body).map(Some)
}

/// An incremental frame decoder for nonblocking readers.
///
/// A reactor reads whatever bytes the socket has ready, [`feed`]s them
/// in, and pulls complete messages with [`next_msg`] — the
/// sans-I/O counterpart of the blocking [`read_msg`]. Partial frames
/// simply stay buffered until more bytes arrive; a decode error means
/// framing is lost and the connection should be dropped.
///
/// [`feed`]: FrameReader::feed
/// [`next_msg`]: FrameReader::next_msg
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: BytesMut,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Append bytes received from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }

    /// Decode the next complete message, if one is buffered.
    ///
    /// `Ok(None)` means more bytes are needed. Call in a loop after each
    /// [`FrameReader::feed`] — one read may complete several frames.
    pub fn next_msg(&mut self) -> Result<Option<WireMsg>, NetError> {
        decode_framed(&mut self.buf)
    }

    /// Bytes buffered but not yet decoded (observability, tests).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// Write one framed message to a stream.
pub fn write_msg(w: &mut impl Write, msg: &WireMsg) -> io::Result<()> {
    w.write_all(&encode_framed(msg))?;
    w.flush()
}

/// Read one framed message from a stream (blocking).
///
/// The length prefix is validated before the body buffer is allocated.
pub fn read_msg(r: &mut impl Read) -> Result<WireMsg, ReadError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(ReadError::Decode(NetError::Oversized(u64::from(len))));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(WireMsg::decode(Bytes::from(body))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framed_roundtrip_through_incremental_buffer() {
        let msgs =
            vec![WireMsg::Ack { seq: 1 }, WireMsg::Ack { seq: 2 }, WireMsg::Reject("x".into())];
        let mut stream = BytesMut::new();
        for m in &msgs {
            stream.put_slice(&encode_framed(m));
        }
        // Feed the bytes one at a time, as a socket might deliver them.
        let mut rx = BytesMut::new();
        let mut out = Vec::new();
        for &b in stream.freeze().as_slice() {
            rx.put_u8(b);
            while let Some(m) = decode_framed(&mut rx).unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out, msgs);
    }

    #[test]
    fn zero_and_oversized_lengths_rejected() {
        let mut zero = BytesMut::from(&[0u8, 0, 0, 0, 9][..]);
        assert!(matches!(decode_framed(&mut zero), Err(NetError::Oversized(0))));
        let mut big = BytesMut::from(&u32::MAX.to_be_bytes()[..]);
        assert!(matches!(decode_framed(&mut big), Err(NetError::Oversized(_))));
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        let msgs =
            vec![WireMsg::Ack { seq: 7 }, WireMsg::Reject("busy".into()), WireMsg::Ack { seq: 8 }];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_framed(m));
        }
        // Feed in ragged chunks, as a nonblocking read would deliver.
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        for chunk in wire.chunks(3) {
            reader.feed(chunk);
            while let Some(m) = reader.next_msg().unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out, msgs);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn frame_reader_surfaces_bad_prefix() {
        let mut reader = FrameReader::new();
        reader.feed(&u32::MAX.to_be_bytes());
        assert!(matches!(reader.next_msg(), Err(NetError::Oversized(_))));
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let msg = WireMsg::Ack { seq: 42 };
        let mut wire = Vec::new();
        write_msg(&mut wire, &msg).unwrap();
        let mut reader = &wire[..];
        assert_eq!(read_msg(&mut reader).unwrap(), msg);
    }

    #[test]
    fn stream_read_rejects_oversized_prefix_without_allocating() {
        let wire = u32::MAX.to_be_bytes();
        let mut reader = &wire[..];
        assert!(matches!(read_msg(&mut reader), Err(ReadError::Decode(NetError::Oversized(_)))));
    }
}
