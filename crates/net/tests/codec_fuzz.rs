//! Frame-decode fuzzing: arbitrary bytes, bit flips, truncations and
//! hostile length prefixes must produce clean errors — never a panic,
//! never an allocation sized from attacker-controlled headers.

use bytes::{BufMut, Bytes, BytesMut};
use proptest::prelude::*;

use repl_net::{
    batch_messages, decode_framed, encode_framed, ClientMsg, ClientReply, ExecError, Hello,
    HelloAck, NetError, Payload, Subtxn, SubtxnKind, WireMsg, MAX_BATCH_PAYLOADS, MAX_FRAME_LEN,
};
use repl_protocol::timestamp::Timestamp;
use repl_types::{GlobalTxnId, ItemId, Op, SiteId, Value};

fn arb_value() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Initial),
        (i64::MIN..i64::MAX).prop_map(Value::Int),
        prop::collection::vec(0u8..=u8::MAX, 0..32).prop_map(Value::Bytes),
    ]
    .boxed()
}

fn arb_gid() -> BoxedStrategy<GlobalTxnId> {
    (0u32..8, 0u64..u64::MAX).prop_map(|(s, q)| GlobalTxnId::new(SiteId(s), q)).boxed()
}

fn arb_string() -> BoxedStrategy<String> {
    prop::collection::vec(32u8..127, 0..24)
        .prop_map(|bytes| String::from_utf8(bytes).expect("ascii"))
        .boxed()
}

fn arb_timestamp() -> BoxedStrategy<Timestamp> {
    (0u64..u64::MAX, prop::collection::vec((0u32..8, 0u64..u64::MAX), 0..4))
        .prop_map(|(epoch, tuples)| Timestamp {
            epoch,
            tuples: tuples.into_iter().map(|(s, l)| (SiteId(s), l)).collect(),
        })
        .boxed()
}

fn arb_subtxn() -> BoxedStrategy<Subtxn> {
    (
        arb_gid(),
        0u32..8,
        prop_oneof![Just(SubtxnKind::Normal), Just(SubtxnKind::Dummy), Just(SubtxnKind::Special)],
        prop_oneof![Just(None), arb_timestamp().prop_map(Some),],
        prop::collection::vec((0u32..16, arb_value()), 0..4),
        prop::collection::vec(0u32..8, 0..4),
    )
        .prop_map(|(gid, origin, kind, ts, writes, dests)| Subtxn {
            gid,
            origin: SiteId(origin),
            kind,
            ts,
            writes: writes.into_iter().map(|(i, v)| (ItemId(i), v)).collect(),
            dest_sites: dests.into_iter().map(SiteId).collect(),
        })
        .boxed()
}

fn arb_msg() -> BoxedStrategy<WireMsg> {
    prop_oneof![
        (0u32..8, 0u16..8, 0u16..8, 0u64..u64::MAX).prop_map(|(s, lo, hi, c)| {
            WireMsg::Hello(Hello { site: SiteId(s), version_min: lo, version_max: hi, cluster: c })
        }),
        (0u16..8, 0u32..8, 0u64..u64::MAX).prop_map(|(v, s, q)| {
            WireMsg::HelloAck(HelloAck { version: v, site: SiteId(s), resume_seq: q })
        }),
        arb_string().prop_map(WireMsg::Reject),
        (0u64..u64::MAX, arb_subtxn())
            .prop_map(|(seq, sub)| WireMsg::Link { seq, payload: Payload::Subtxn(sub) }),
        (0u64..u64::MAX, arb_gid(), prop::bool::ANY).prop_map(|(seq, gid, commit)| {
            WireMsg::Link { seq, payload: Payload::Decision { gid, commit } }
        }),
        (0u64..u64::MAX).prop_map(|seq| WireMsg::Ack { seq }),
        (0u64..u64::MAX, prop::collection::vec(arb_subtxn(), 1..5)).prop_map(
            |(first_seq, subs)| WireMsg::Batch {
                first_seq,
                payloads: subs.into_iter().map(Payload::Subtxn).collect(),
            }
        ),
        prop::collection::vec((0u32..16, i64::MIN..i64::MAX), 0..4).prop_map(|ws| {
            WireMsg::Client(ClientMsg::Execute(
                ws.into_iter().map(|(i, v)| Op::write(ItemId(i), v)).collect(),
            ))
        }),
        Just(WireMsg::Client(ClientMsg::Stats)),
        (0u32..16).prop_map(|i| WireMsg::Client(ClientMsg::Peek(ItemId(i)))),
        arb_gid().prop_map(|g| WireMsg::Reply(ClientReply::Executed(Ok(g)))),
        arb_string().prop_map(|m| WireMsg::Reply(ClientReply::Executed(Err(ExecError::Other(m))))),
    ]
    .boxed()
}

proptest! {
    /// Arbitrary bytes never panic the decoder, and anything that does
    /// decode re-encodes to an equal message.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=u8::MAX, 0..256),
    ) {
        if let Ok(msg) = WireMsg::decode(Bytes::from(bytes)) {
            let again = WireMsg::decode(msg.encode()).unwrap();
            prop_assert_eq!(again, msg);
        }
    }

    /// Well-formed messages survive an encode/decode round trip.
    #[test]
    fn roundtrip_arbitrary(msg in arb_msg()) {
        let decoded = WireMsg::decode(msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// Flipping any single bit of a valid body either still decodes (to
    /// possibly different content) or fails cleanly — never panics.
    #[test]
    fn decode_survives_bit_flips(
        msg in arb_msg(),
        flip in (0usize..usize::MAX, 0u8..8),
    ) {
        let mut raw = msg.encode().to_vec();
        let idx = flip.0 % raw.len();
        raw[idx] ^= 1 << flip.1;
        let _ = WireMsg::decode(Bytes::from(raw));
    }

    /// Every strict prefix of a valid body fails cleanly.
    #[test]
    fn decode_rejects_arbitrary_truncations(
        msg in arb_msg(),
        cut_seed in 0usize..usize::MAX,
    ) {
        let raw = msg.encode();
        let cut = cut_seed % raw.len();
        prop_assert!(WireMsg::decode(raw.slice(0..cut)).is_err());
    }

    /// Stream framing: arbitrary bytes fed through the incremental frame
    /// decoder never panic and never over-allocate.
    #[test]
    fn frame_decoder_never_panics(
        bytes in prop::collection::vec(0u8..=u8::MAX, 0..512),
    ) {
        let mut buf = BytesMut::from(&bytes[..]);
        while let Ok(Some(_)) = decode_framed(&mut buf) {}
    }
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocation() {
    // A 4 GiB claimed frame with only a few real bytes behind it: the
    // frame layer must refuse before sizing any buffer from the header.
    let mut buf = BytesMut::new();
    buf.put_u32(u32::MAX);
    buf.put_slice(&[1, 2, 3]);
    assert!(decode_framed(&mut buf).is_err());

    let mut over = BytesMut::new();
    over.put_u32(MAX_FRAME_LEN + 1);
    assert!(decode_framed(&mut over).is_err());

    // Exactly at the cap with an incomplete body: wait for more bytes.
    let mut at_cap = BytesMut::new();
    at_cap.put_u32(MAX_FRAME_LEN);
    at_cap.put_slice(&[0; 64]);
    assert!(matches!(decode_framed(&mut at_cap), Ok(None)));
}

#[test]
fn inner_count_headers_are_distrusted() {
    // A Link/Subtxn body claiming 2^32-1 writes with no bytes behind the
    // claim must fail with Truncated, not attempt the allocation.
    let mut buf = BytesMut::new();
    buf.put_u8(4); // Link
    buf.put_u64(1); // seq
    buf.put_u8(1); // Payload::Subtxn
    buf.put_u32(0); // gid.origin
    buf.put_u64(0); // gid.seq
    buf.put_u32(0); // origin
    buf.put_u8(0); // kind Normal
    buf.put_u8(0); // ts None
    buf.put_u32(u32::MAX); // writes count — hostile
    assert!(WireMsg::decode(buf.freeze()).is_err());
}

#[test]
fn hostile_batch_counts_are_rejected_not_split() {
    // A Batch claiming more payloads than the cap must be refused as
    // Oversized before any payload parses — never silently truncated or
    // split, which would desynchronize the two ends' sequence counters.
    let mut buf = BytesMut::new();
    buf.put_u8(8); // Batch
    buf.put_u64(9); // first_seq
    buf.put_u32((MAX_BATCH_PAYLOADS as u32) + 1); // hostile count
    for _ in 0..8 {
        buf.put_u8(2); // a few plausible decision payload bytes
    }
    assert!(matches!(WireMsg::decode(buf.freeze()), Err(NetError::Oversized(_))));

    // A truncated but in-cap count fails as Truncated, still no panic.
    let mut buf = BytesMut::new();
    buf.put_u8(8);
    buf.put_u64(9);
    buf.put_u32(3);
    assert!(WireMsg::decode(buf.freeze()).is_err());
}

#[test]
fn batch_messages_never_emit_over_cap_frames() {
    // The sender-side splitter must keep every frame under both caps
    // even for bulky payloads.
    let bulky: Vec<Payload> = (0..64)
        .map(|i| {
            Payload::Subtxn(Subtxn {
                gid: GlobalTxnId::new(SiteId(0), i),
                origin: SiteId(0),
                kind: SubtxnKind::Normal,
                ts: None,
                writes: (0..2048).map(|j| (ItemId(j), Value::Bytes(vec![7u8; 16]))).collect(),
                dest_sites: vec![SiteId(1)],
            })
        })
        .collect();
    let msgs = batch_messages(5, bulky);
    let mut next_seq = 5;
    for m in &msgs {
        assert!(m.encode().len() <= MAX_FRAME_LEN as usize, "frame over cap");
        match m {
            WireMsg::Link { seq, .. } => {
                assert_eq!(*seq, next_seq);
                next_seq += 1;
            }
            WireMsg::Batch { first_seq, payloads } => {
                assert_eq!(*first_seq, next_seq);
                assert!(payloads.len() <= MAX_BATCH_PAYLOADS);
                next_seq += payloads.len() as u64;
            }
            other => panic!("unexpected message {other:?}"),
        }
    }
    assert_eq!(next_seq, 5 + 64);
}

#[test]
fn framed_messages_obey_the_cap() {
    let msg = WireMsg::Reply(ClientReply::State(Bytes::from(vec![7u8; 1024])));
    let framed = encode_framed(&msg);
    assert!(framed.len() as u64 <= 4 + u64::from(MAX_FRAME_LEN));
    let mut buf = BytesMut::from(&framed[..]);
    assert_eq!(decode_framed(&mut buf).unwrap(), Some(msg));
}
