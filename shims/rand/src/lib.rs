//! Offline shim for `rand` 0.10 (see `shims/README.md`).
//!
//! The workspace seeds every generator explicitly (`StdRng::seed_from_u64`)
//! and draws only `random::<f64>()` and `random_range(a..b)` — this shim
//! implements exactly that surface over a SplitMix64 core. There is
//! deliberately no OS-entropy constructor: ambient randomness is what the
//! repository's determinism lint exists to reject.

use std::ops::Range;

/// Core 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from an explicit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator: SplitMix64. Tiny, fast, and
    /// plenty for workload synthesis; sequences are stable across
    /// platforms and releases of this shim.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Random: Sized {
    /// Draw a uniformly distributed value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range; panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random_from(rng) * (self.end - self.start)
    }
}

/// Convenience draws, mirroring rand 0.10's `Rng`/`RngExt` split.
pub trait RngExt: RngCore {
    /// Draw a uniformly distributed value of `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// Draw uniformly from `range`; panics when the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let n = rng.random_range(3usize..17);
            assert!((3..17).contains(&n));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }
}
