//! Offline shim for `serde_derive` (see `shims/README.md`).
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` shim's JSON-emitting `Serialize` trait, parsing the item
//! by hand (no `syn`/`quote` available offline). Supports non-generic
//! structs (named, tuple, unit) and enums (unit, tuple, and struct
//! variants) — the only shapes this workspace derives.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = serialize_body(&item);
    format!(
        "impl ::serde::Serialize for {} {{\n\
            fn serialize_json(&self, out: &mut ::std::string::String) {{\n{}\n}}\n\
        }}",
        item.name, body
    )
    .parse()
    .expect("serde_derive: generated impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("serde_derive: generated impl failed to parse")
}

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (deriving {name})");
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        kw => panic!("serde_derive: cannot derive for `{kw}` items"),
    };
    Item { name, kind }
}

/// Advance past any `#[...]` attributes and a `pub` / `pub(...)` prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' then the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ ... }` struct body. Types are irrelevant: the
/// generated code just recurses into each field's own `Serialize` impl.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde_derive: expected field name, found {other}"),
        }
        i += 1; // name
        i += 1; // ':'
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

/// Consume one type, tracking `<...>` nesting so commas inside generic
/// arguments (e.g. `HashMap<K, V>`) don't terminate the field early.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

fn serialize_body(item: &Item) -> String {
    match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut out = String::from("out.push('{');\n");
            for (idx, f) in fields.iter().enumerate() {
                if idx > 0 {
                    out.push_str("out.push(',');\n");
                }
                out.push_str(&format!(
                    "::serde::ser::key(out, \"{f}\");\n\
                     ::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            out.push_str("out.push('}');");
            out
        }
        ItemKind::TupleStruct(1) => {
            // Newtype structs serialize transparently, matching serde.
            "::serde::Serialize::serialize_json(&self.0, out);".to_string()
        }
        ItemKind::TupleStruct(n) => {
            let mut out = String::from("out.push('[');\n");
            for idx in 0..*n {
                if idx > 0 {
                    out.push_str("out.push(',');\n");
                }
                out.push_str(&format!("::serde::Serialize::serialize_json(&self.{idx}, out);\n"));
            }
            out.push_str("out.push(']');");
            out
        }
        ItemKind::UnitStruct => "out.push_str(\"null\");".to_string(),
        ItemKind::Enum(variants) => {
            let ty = &item.name;
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        arms.push_str(&format!("{ty}::{vn} => out.push_str(\"\\\"{vn}\\\"\"),\n"));
                    }
                    VariantFields::Tuple(1) => {
                        arms.push_str(&format!(
                            "{ty}::{vn}(__f0) => {{\n\
                                out.push('{{');\n\
                                ::serde::ser::key(out, \"{vn}\");\n\
                                ::serde::Serialize::serialize_json(__f0, out);\n\
                                out.push('}}');\n\
                            }}\n"
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut body = format!(
                            "{ty}::{vn}({}) => {{\n\
                                out.push('{{');\n\
                                ::serde::ser::key(out, \"{vn}\");\n\
                                out.push('[');\n",
                            binders.join(", ")
                        );
                        for (k, b) in binders.iter().enumerate() {
                            if k > 0 {
                                body.push_str("out.push(',');\n");
                            }
                            body.push_str(&format!(
                                "::serde::Serialize::serialize_json({b}, out);\n"
                            ));
                        }
                        body.push_str("out.push(']');\nout.push('}');\n}\n");
                        arms.push_str(&body);
                    }
                    VariantFields::Named(fields) => {
                        let mut body = format!(
                            "{ty}::{vn} {{ {} }} => {{\n\
                                out.push('{{');\n\
                                ::serde::ser::key(out, \"{vn}\");\n\
                                out.push('{{');\n",
                            fields.join(", ")
                        );
                        for (k, f) in fields.iter().enumerate() {
                            if k > 0 {
                                body.push_str("out.push(',');\n");
                            }
                            body.push_str(&format!(
                                "::serde::ser::key(out, \"{f}\");\n\
                                 ::serde::Serialize::serialize_json({f}, out);\n"
                            ));
                        }
                        body.push_str("out.push('}');\nout.push('}');\n}\n");
                        arms.push_str(&body);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    }
}
