//! Offline shim for `parking_lot` (see `shims/README.md`).
//!
//! What the workspace actually relies on is the ergonomics: `lock()`
//! returning a guard directly, with no poisoning layer. Backed by
//! `std::sync`; a panic while holding the lock is swallowed by taking the
//! inner value from the poison wrapper, matching parking_lot's behavior of
//! simply unlocking.

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
