//! Offline shim for `bytes` (see `shims/README.md`).
//!
//! The WAL encodes with `BytesMut`/`BufMut` and decodes by consuming a
//! `Bytes` through `Buf`. `Bytes` here is an `Arc<[u8]>` window — cloning
//! and `slice` are O(1) and zero-copy, `get_*` advance the window, exactly
//! the subset the storage and runtime crates use.

use std::ops::Range;
use std::sync::Arc;

/// A cheaply cloneable, sliceable view of immutable bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Length of the remaining view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining view as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the remaining view into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A zero-copy sub-view of the remaining bytes.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "advance past end of buffer");
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }

    /// A view of a static byte slice (allocates in this shim; the real
    /// crate is zero-copy here, which callers must not rely on).
    pub fn from_static(v: &'static [u8]) -> Self {
        Bytes::from(v)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

/// Growable byte buffer for encoding.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Discard the first `n` bytes.
    ///
    /// # Panics
    /// Panics if `n > len()`.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.data.len(), "advance past end of buffer");
        self.data.drain(..n);
    }

    /// Split off and return the first `n` bytes, leaving the rest.
    ///
    /// # Panics
    /// Panics if `n > len()`.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.data.len(), "split past end of buffer");
        let rest = self.data.split_off(n);
        BytesMut { data: std::mem::replace(&mut self.data, rest) }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { data: v.to_vec() }
    }
}

/// Read access to a byte cursor; all integers are big-endian.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consume one byte.
    fn get_u8(&mut self) -> u8;
    /// Consume a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Consume a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
    /// Consume a big-endian `i64`.
    fn get_i64(&mut self) -> i64;
    /// Consume `n` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().expect("2 bytes"))
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes::from(self.take(n))
    }
}

/// Write access to a growable buffer; all integers are big-endian.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64);
    /// Append a slice verbatim.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(u64::MAX - 1);
        buf.put_i64(-42);
        buf.put_slice(b"tail");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 4 + 8 + 8 + 4);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), u64::MAX - 1);
        assert_eq!(b.get_i64(), -42);
        assert_eq!(b.copy_to_bytes(4).to_vec(), b"tail");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_is_a_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mut s = b.slice(2..5);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        assert_eq!(s.get_u8(), 2);
        assert_eq!(s.remaining(), 2);
        // Original is untouched.
        assert_eq!(b.len(), 6);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        b.get_u32();
    }
}
