//! Offline shim for `criterion` (see `shims/README.md`).
//!
//! Keeps the bench targets compiling and runnable: each `bench_function`
//! runs its routine `sample_size` times and prints the mean wall-clock
//! time. No statistics, warm-up, or HTML reports.

use std::time::Instant;

/// Bench driver; collects nothing, prints per-benchmark means.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size, total_nanos: 0, iters: 0 };
        f(&mut b);
        let mean = b.total_nanos.checked_div(b.iters).unwrap_or(0);
        println!("bench {name:<50} {mean:>12} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Times the closed-over routine.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters: u128,
}

/// How much setup output to batch per timing run; the shim times one
/// routine call per batch regardless.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

impl Bencher {
    /// Time `routine` directly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let out = routine();
            self.total_nanos += t0.elapsed().as_nanos();
            self.iters += 1;
            drop(out);
        }
    }

    /// Time `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.total_nanos += t0.elapsed().as_nanos();
            self.iters += 1;
            drop(out);
        }
    }
}

/// Prevent the optimizer from discarding `value`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Define a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
