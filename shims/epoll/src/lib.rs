//! Offline shim: a minimal, level-triggered epoll wrapper.
//!
//! The container has no registry access, so instead of `mio`/`libc`
//! crates this shim declares the four epoll-related libc symbols
//! directly (`std` already links libc, so they resolve at link time)
//! and wraps them in a safe, deliberately tiny API:
//!
//! * [`Epoll::new`] — `epoll_create1(EPOLL_CLOEXEC)`.
//! * [`Epoll::add`] / [`Epoll::modify`] / [`Epoll::delete`] —
//!   `epoll_ctl`, registering a caller-chosen `u64` token per fd.
//! * [`Epoll::wait`] — `epoll_wait` into a caller-owned event buffer.
//!
//! Level-triggered only (the default): readiness is re-reported on
//! every `wait` until the condition is drained, which makes the caller's
//! readiness loop simple to reason about — no missed-edge hazards.
//! All unsafety in the workspace lives in this file; the error paths
//! surface `io::Error::last_os_error()` like std's own wrappers.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;

// From <sys/epoll.h> on Linux.
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// The kernel's event record. x86-64 Linux packs this struct (no
/// padding between `events` and `data`); the `packed` repr reproduces
/// the exact ABI layout.
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

// `std` links libc; these resolve against it without any crate dep.
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

/// Which readiness conditions to watch on a registered fd.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest(u32);

impl Interest {
    /// Readable (plus peer-hangup, which also wakes readers).
    pub const READ: Interest = Interest(EPOLLIN | EPOLLRDHUP);
    /// Writable.
    pub const WRITE: Interest = Interest(EPOLLOUT);
    /// Readable and writable.
    pub const READ_WRITE: Interest = Interest(EPOLLIN | EPOLLRDHUP | EPOLLOUT);
}

/// One readiness report from [`Epoll::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Data can be read (or the peer hung up, which reads as EOF).
    pub readable: bool,
    /// The fd can accept writes without blocking.
    pub writable: bool,
    /// Error or hangup condition; the caller should tear the fd down.
    pub error: bool,
}

/// A level-triggered epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut ev = event.unwrap_or(EpollEvent { events: 0, data: 0 });
        let ptr = if event.is_some() { &mut ev as *mut EpollEvent } else { std::ptr::null_mut() };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with `token` for `interest`.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some(EpollEvent { events: interest.0, data: token }))
    }

    /// Change the interest set (and token) of a registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Some(EpollEvent { events: interest.0, data: token }))
    }

    /// Deregister `fd`. Harmless to call for an fd the kernel already
    /// dropped from the set (closing an fd deregisters it implicitly).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Wait up to `timeout_ms` (`-1` = forever, `0` = poll) for
    /// readiness, appending decoded events to `out`. Returns the number
    /// of events delivered; `EINTR` is reported as zero events so
    /// callers need no signal-handling special case.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
        let n = unsafe {
            epoll_wait(self.fd, raw.as_mut_ptr(), raw.len() as c_int, timeout_ms as c_int)
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in &raw[..n as usize] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                error: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn reports_readability_level_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), 7, Interest::READ).unwrap();

        // Nothing to read yet: a zero-timeout wait returns no events.
        let mut events = Vec::new();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        client.write_all(b"xy").unwrap();
        // Level-triggered: readiness persists across waits until drained.
        for _ in 0..2 {
            events.clear();
            ep.wait(&mut events, 1000).unwrap();
            let ev = events.iter().find(|e| e.token == 7).expect("readable event");
            assert!(ev.readable);
        }
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 2);
        events.clear();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));
    }

    #[test]
    fn write_interest_and_modify() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _server = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        // An idle socket's send buffer is empty: writable immediately.
        ep.add(client.as_raw_fd(), 1, Interest::READ_WRITE).unwrap();
        let mut events = Vec::new();
        ep.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        // Dropping write interest stops the writable reports.
        ep.modify(client.as_raw_fd(), 1, Interest::READ).unwrap();
        events.clear();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 1 || !e.writable));

        ep.delete(client.as_raw_fd()).unwrap();
        events.clear();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn hangup_reports_error_and_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), 3, Interest::READ).unwrap();
        drop(client);
        let mut events = Vec::new();
        ep.wait(&mut events, 1000).unwrap();
        let ev = events.iter().find(|e| e.token == 3).expect("hangup event");
        // A clean FIN reads as EOF; readable wakes the reader to see it.
        assert!(ev.readable);
    }
}
