//! Offline shim for `serde` (see `shims/README.md`).
//!
//! The workspace uses serde exclusively to derive `Serialize`/`Deserialize`
//! and to render those types as JSON (diagnostics, figure rows). This shim
//! therefore models serialization as direct JSON emission: `Serialize`
//! appends a JSON encoding to a `String`, and `Deserialize` is a marker
//! trait recording that a type opted in (nothing in the tree parses JSON
//! back yet). Both derive macros come from the sibling `serde_derive` shim.

// Let derive-generated `::serde::…` paths resolve inside this crate's own
// tests, mirroring the real crate.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A type that can append its JSON encoding to a buffer.
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait paired with `#[derive(Deserialize)]`.
pub trait Deserialize {}

/// Serialize `value` to a JSON string.
pub fn to_json<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    value.serialize_json(&mut out);
    out
}

/// Helpers used by the generated code.
pub mod ser {
    /// Append `"name":` — object keys are Rust identifiers, so no escaping
    /// is needed for derive-generated calls; literal keys go through
    /// [`escape_str`] anyway for safety.
    pub fn key(out: &mut String, name: &str) {
        escape_str(out, name);
        out.push(':');
    }

    /// Append `s` as a quoted, escaped JSON string.
    pub fn escape_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

macro_rules! serialize_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/Inf; serde_json emits null.
                    out.push_str("null");
                }
            }
        }
    )*};
}

serialize_float!(f32, f64);

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        ser::escape_str(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        ser::escape_str(out, self);
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        ser::escape_str(out, self.encode_utf8(&mut buf));
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(',');
        self.2.serialize_json(out);
        out.push(']');
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            ser::key(out, &k.to_string());
            v.serialize_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Named {
        a: u32,
        b: String,
    }

    #[derive(Serialize)]
    struct Newtype(u64);

    #[derive(Serialize)]
    struct Pair(u32, bool);

    #[derive(Serialize)]
    enum Mixed {
        Unit,
        One(i64),
        Two(u8, u8),
        Rec { x: u32 },
    }

    #[test]
    fn derived_named_struct() {
        let v = Named { a: 7, b: "hi\"x".into() };
        assert_eq!(to_json(&v), r#"{"a":7,"b":"hi\"x"}"#);
    }

    #[test]
    fn derived_newtype_is_transparent() {
        assert_eq!(to_json(&Newtype(9)), "9");
        assert_eq!(to_json(&Pair(1, true)), "[1,true]");
    }

    #[test]
    fn derived_enum_variants() {
        assert_eq!(to_json(&Mixed::Unit), r#""Unit""#);
        assert_eq!(to_json(&Mixed::One(-3)), r#"{"One":-3}"#);
        assert_eq!(to_json(&Mixed::Two(1, 2)), r#"{"Two":[1,2]}"#);
        assert_eq!(to_json(&Mixed::Rec { x: 5 }), r#"{"Rec":{"x":5}}"#);
    }

    #[test]
    fn containers() {
        assert_eq!(to_json(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&Some(4u8)), "4");
        assert_eq!(to_json(&Option::<u8>::None), "null");
        assert_eq!(to_json(&(1u8, "x")), r#"[1,"x"]"#);
        assert_eq!(to_json(&f64::NAN), "null");
        assert_eq!(to_json(&0.25f64), "0.25");
    }
}
