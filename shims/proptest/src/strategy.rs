//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` from a seeded RNG.
///
/// Object-safe: combinator methods are `Self: Sized`, so
/// `Box<dyn Strategy<Value = T>>` works (see [`BoxedStrategy`]).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed strategies; built by `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Build from `(weight, strategy)` arms; weights must sum to > 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights covered above")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
}
