//! Deterministic case generation and failure reporting.

/// Per-test configuration; only `cases` is consulted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Accepted for source compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property was violated; the test fails.
    Fail(String),
    /// The case did not satisfy a `prop_assume!`; a fresh case is drawn.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail<T: std::fmt::Display>(msg: T) -> Self {
        TestCaseError::Fail(msg.to_string())
    }

    /// A rejection with the given message.
    pub fn reject<T: std::fmt::Display>(msg: T) -> Self {
        TestCaseError::Reject(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64 generator seeded from `(test name, case index)`, so every
/// test's case stream is stable across runs, platforms, and test-thread
/// interleavings.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case `index` of the named test.
    pub fn for_case(test_name: &str, index: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
