//! Offline shim for `proptest` (see `shims/README.md`).
//!
//! Implements the subset of proptest this workspace uses: the `proptest!`
//! macro, range/tuple/`Just`/`prop_oneof!`/`prop_map` strategies, the
//! `prop::collection` and `prop::bool` modules, `prop_assert*!` /
//! `prop_assume!`, and `ProptestConfig { cases }`. Cases are generated from
//! a seed derived from the test's module path and case index, so runs are
//! bit-reproducible. There is no shrinking: a failing case reports its
//! generated inputs' case number instead of a minimized counterexample.

pub mod strategy;

pub mod test_runner;

/// Collection strategies (`prop::collection::{vec, btree_map}`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Size bounds for generated collections: `[min, max]` inclusive.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + (rng.next_u64() as usize) % (self.max - self.min + 1)
        }
    }

    /// Anything convertible to a [`SizeRange`]; mirrors `Into<SizeRange>`.
    pub trait IntoSizeRange {
        /// Convert to concrete inclusive bounds.
        fn into_size_range(self) -> SizeRange;
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> SizeRange {
            assert!(self.start < self.end, "empty collection size range");
            SizeRange { min: self.start, max: self.end - 1 }
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn into_size_range(self) -> SizeRange {
            SizeRange { min: *self.start(), max: *self.end() }
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> SizeRange {
            SizeRange { min: self, max: self }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy { element, size: size.into_size_range() }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeMap`s with `size`-many insertion attempts.
    /// Key collisions may make the final map smaller, as in real proptest
    /// generation before shrinking; at least one entry is kept when the
    /// minimum size is nonzero.
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: impl IntoSizeRange,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { keys, values, size: size.into_size_range() }
    }

    /// See [`btree_map`].
    #[derive(Clone, Debug)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut map = BTreeMap::new();
            // Extra attempts compensate for key collisions.
            for _ in 0..n.saturating_mul(3) {
                if map.len() >= n {
                    break;
                }
                map.insert(self.keys.generate(rng), self.values.generate(rng));
            }
            map
        }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for an unbiased boolean.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob-imported surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection`, `prop::bool`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Weighted choice among strategies with a common value type.
///
/// ```
/// use proptest::prelude::*;
/// let s = prop_oneof![
///     3 => (0u8..8).prop_map(|n| n as u32),
///     1 => Just(99u32),
/// ];
/// let mut rng = TestRng::for_case("doc", 0);
/// let v = s.generate(&mut rng);
/// assert!(v < 8 || v == 99);
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discard the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Define deterministic property tests.
///
/// Accepts the real crate's grammar for the forms used in this workspace:
/// an optional `#![proptest_config(...)]` header, then test functions whose
/// parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!({$config} $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!({$crate::test_runner::ProptestConfig::default()} $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ({$config:expr} $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                let mut __case: u32 = 0;
                let mut __rejects: u32 = 0;
                while __case < __config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        __test_name,
                        (__case as u64) | ((__rejects as u64) << 32),
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __result = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => __case += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(__why)) => {
                            __rejects += 1;
                            if __rejects > 65_536 {
                                panic!(
                                    "{}: too many rejected cases (last: {})",
                                    __test_name, __why
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__why)) => {
                            panic!(
                                "{}: case {} failed: {}",
                                __test_name, __case, __why
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..50).prop_map(|n| n * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u8..9, b in 10u64..=20, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((10..=20).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(v in prop::collection::vec((0u32..5, prop::bool::ANY), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (n, _) in v {
                prop_assert!(n < 5);
            }
        }

        #[test]
        fn map_oneof_just_and_assume(
            n in prop_oneof![3 => arb_even(), 1 => Just(1u32)],
            m in prop::collection::btree_map(0u32..6, 0u64..4, 1..5),
        ) {
            prop_assume!(n != 1);
            prop_assert_eq!(n % 2, 0);
            prop_assert!(!m.is_empty());
            prop_assert_ne!(m.len(), 9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        #[test]
        fn config_header_is_honored(x in 0u8..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u64..1000, 5..10);
        let a = strat.generate(&mut TestRng::for_case("det", 4));
        let b = strat.generate(&mut TestRng::for_case("det", 4));
        let c = strat.generate(&mut TestRng::for_case("det", 5));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
