//! Offline shim for `crossbeam` (see `shims/README.md`).
//!
//! The runtime needs MPMC channels with per-link FIFO delivery and
//! disconnect-on-drop semantics. This shim provides them over a
//! `Mutex<VecDeque>` + two `Condvar`s — the semantics of
//! `crossbeam::channel`, none of the lock-free machinery.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded FIFO channel; `send` blocks while `cap` messages are
    /// queued. `cap = 0` is rendezvous in real crossbeam; the shim rounds
    /// it up to 1, which the workspace never relies on.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cap,
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        recv_ready: Condvar,
        send_ready: Condvar,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Returned when all receivers have been dropped; carries the
    /// unsent message.
    pub struct SendError<T>(pub T);

    /// Returned when the channel is empty and all senders are dropped.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct RecvError;

    /// Returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with no message.
        Timeout,
        /// The channel is empty and every sender is dropped.
        Disconnected,
    }

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    impl<T> Sender<T> {
        /// Enqueue `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().expect("channel poisoned");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.chan.send_ready.wait(st).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            self.chan.recv_ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next message, blocking while the channel is empty
        /// and senders remain.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.send_ready.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.recv_ready.wait(st).expect("channel poisoned");
            }
        }

        /// Dequeue the next message, waiting at most `timeout` for one to
        /// arrive.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.chan.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.send_ready.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .chan
                    .recv_ready
                    .wait_timeout(st, deadline - now)
                    .expect("channel poisoned");
                st = guard;
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel poisoned").senders += 1;
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel poisoned").receivers += 1;
            Receiver { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().expect("channel poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                self.chan.recv_ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().expect("channel poisoned");
            st.receivers -= 1;
            if st.receivers == 0 {
                self.chan.send_ready.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_within_a_sender() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            drop(tx);
            tx2.send(2).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receiver_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(5).is_err());
        }

        #[test]
        fn cross_thread_rendezvous() {
            let (tx, rx) = bounded(1);
            let h = thread::spawn(move || {
                for i in 0..1000u64 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            h.join().unwrap();
            assert_eq!(sum, 999 * 1000 / 2);
        }
    }
}
