#!/usr/bin/env bash
# The full local gate, in the order a failure is cheapest to hit:
# formatting, clippy, the determinism lint, then build and tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> replint (determinism lint + sans-I/O gate + runtime panic-freedom)"
cargo run -q -p repl-analysis --bin replint

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> mc_smoke (exhaustive bounded model check, 3 sites / 2 txns, all four protocols)"
./target/release/replmc --stats --max-states 2000000

echo "==> differential matrix gate (sim vs channel vs TCP threads vs TCP epoll, incl. MVCC column, quick)"
DIFF_MATRIX_TXNS=6 cargo test -q -p repl-runtime --test differential_matrix

echo "==> MVCC smoke gate (quick read-heavy sweep; exits 1 unless MVCC beats 2PL at read-pct >= 0.8)"
REPRO_SCALE=quick REPRO_WORKERS=4 REPRO_NO_CACHE=1 ./target/release/read_sweep \
    --out /tmp/bench_mvcc_smoke.json > /dev/null

echo "==> batching smoke gate (batch {1,8}; exits 1 unless batched+parallel beats serial for both DAG protocols; byte-identity at batch 8 is in the matrix gate above)"
REPRO_SCALE=quick REPRO_WORKERS=4 REPRO_NO_CACHE=1 ./target/release/prop_sweep \
    --smoke --out /tmp/bench_propagation_smoke.json > /dev/null

echo "==> smoke sweep (quick fig2a on the 4-worker pool, cache off)"
REPRO_SCALE=quick REPRO_WORKERS=4 REPRO_NO_CACHE=1 ./target/release/fig2a > /dev/null

echo "==> fault smoke sweep (seeded crash plans, cache off)"
REPRO_SCALE=quick REPRO_WORKERS=4 REPRO_NO_CACHE=1 ./target/release/fault_sweep > /dev/null

echo "==> loopback TCP smoke (3 repld processes, mid-run connection kill)"
./target/release/tcp_smoke > /dev/null

echo "==> epoll smoke (repld --reactor epoll, 64-connection closed-loop loadgen)"
REPLD_BIN=./target/release/repld ./target/release/loadgen \
    --reactor epoll --conns 64 --txns 3 --out /tmp/bench_reactor_smoke.json > /dev/null

echo "==> chaos smoke (seeded nemesis, 4 protocols on channel + tcp, convergence + 1SR)"
REPLD_BIN=./target/release/repld ./target/release/chaos_soak \
    --smoke --out /tmp/bench_chaos_smoke.json > /dev/null

echo "ci: all gates passed"
